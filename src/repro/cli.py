"""Command-line interface for running the paper's experiments.

Installed as the ``repro`` console script (also usable as
``python -m repro.cli``)::

    repro table 3                 # regenerate Table 3 (paper layout + ratios)
    repro table 1 --file-mb 2     # quick run at reduced scale
    repro copy --net fddi --biods 7 --write-path gather
    repro copy --net ethernet --presto --stripes 3
    repro copy --write-path gather --json   # machine-readable + span phases
    repro trace                   # Figure 1 timelines
    repro laddis --presto         # Figure 2/3 style curve
    repro claims                  # one-screen summary of headline results
    repro copy --loss-rate 0.01   # file copy over a lossy wire
    repro chaos --plans 5 --json  # seeded fault-injection campaign
    repro cluster --servers 4 --clients 8 --json   # sharded fleet run
    repro cluster --servers 1 2 4 --clients 8      # scaling sweep
    repro bench --out BENCH_1.json                 # perf baseline grid
    repro overload --json         # goodput-vs-load sweep past saturation
    repro overload --no-adapt     # the collapse curve alone
    repro replica --json          # K=0/1/2 replication cost + promote storm
    repro cache --json            # lease-cache TTL x sharing sweep + chaos probes

Every handler goes through :func:`repro.experiments.run` with an
:class:`~repro.experiments.ExperimentSpec`; the CLI only parses arguments
and formats results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.policy import GatherPolicy
from repro.experiments import (
    PAPER,
    TABLES,
    ExperimentSpec,
    run,
    table_to_dict,
)
from repro.experiments.testbed import TestbedConfig
from repro.metrics import format_comparison
from repro.net import ETHERNET, FDDI
from repro.server.config import WritePath

__all__ = ["main", "build_parser"]

_NETWORKS = {"ethernet": ETHERNET, "fddi": FDDI}


class _UsageError(Exception):
    """Bad flag combination; the handler prints it and returns 2."""


def _add_write_path_options(parser: argparse.ArgumentParser, siva: bool = True) -> None:
    parser.add_argument(
        "--write-path",
        choices=[member.value for member in WritePath],
        default=None,
        help="rfs_write implementation to run (default: standard)",
    )
    # The old boolean aliases are *removed* (they spent one release as
    # deprecated warnings).  They stay registered so the error is ours —
    # a pointer at --write-path — instead of argparse's "unrecognized".
    parser.add_argument("--gather", action="store_true", help=argparse.SUPPRESS)
    if siva:
        parser.add_argument("--siva", action="store_true", help=argparse.SUPPRESS)


def _add_net_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="per-frame network loss probability in [0, 1) (default: 0)",
    )
    parser.add_argument(
        "--net-seed",
        type=int,
        default=None,
        help="seed for the network RNG (default: the testbed seed)",
    )


def _resolve_write_path(args) -> WritePath:
    """Resolve --write-path, rejecting the removed boolean aliases."""
    for flag, value in (("--gather", "gather"), ("--siva", "siva")):
        if getattr(args, value, False):
            raise _UsageError(
                f"{flag} was removed; use --write-path {value} instead"
            )
    if args.write_path is not None:
        return WritePath.coerce(args.write_path)
    return WritePath.STANDARD


def _config_from_args(args, write_path: WritePath, tracing: bool = False) -> TestbedConfig:
    """Build the TestbedConfig the copy/sweep subcommands share."""
    policy = GatherPolicy()
    if getattr(args, "interval_ms", None) is not None:
        policy = GatherPolicy(interval=args.interval_ms / 1000.0)
    return TestbedConfig(
        netspec=_NETWORKS[args.net],
        write_path=write_path,
        nbiods=args.biods,
        presto_bytes=(1 << 20) if getattr(args, "presto", False) else None,
        stripes=getattr(args, "stripes", 1),
        nfsds=getattr(args, "nfsds", 8),
        gather_policy=policy,
        tracing=tracing,
        loss_rate=getattr(args, "loss_rate", 0.0),
        net_seed=getattr(args, "net_seed", None),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Improving the Write Performance of an NFS Server' (USENIX 1994).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table = subparsers.add_parser("table", help="regenerate one of Tables 1-6")
    table.add_argument("number", type=int, choices=sorted(TABLES))
    table.add_argument("--file-mb", type=float, default=10.0, help="copy size (paper: 10)")
    table.add_argument("--json", action="store_true", help="emit the table as JSON")

    copy = subparsers.add_parser("copy", help="run one file-copy cell")
    copy.add_argument("--net", choices=sorted(_NETWORKS), default="fddi")
    copy.add_argument("--biods", type=int, default=7)
    _add_write_path_options(copy)
    copy.add_argument("--presto", action="store_true", help="NVRAM accelerator")
    copy.add_argument("--stripes", type=int, default=1)
    copy.add_argument("--nfsds", type=int, default=8)
    copy.add_argument("--file-mb", type=float, default=10.0)
    copy.add_argument("--interval-ms", type=float, default=None, help="procrastination override")
    _add_net_fault_options(copy)
    copy.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (runs traced: includes per-phase latency percentiles)",
    )

    subparsers.add_parser("trace", help="print the Figure 1 timelines")

    laddis = subparsers.add_parser("laddis", help="run a Figure 2/3 LADDIS curve")
    laddis.add_argument("--presto", action="store_true")
    laddis.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[150.0, 300.0, 450.0, 550.0, 650.0],
    )
    laddis.add_argument("--duration", type=float, default=3.0)
    _add_net_fault_options(laddis)

    subparsers.add_parser("claims", help="one-screen summary of the headline results")

    chaos = subparsers.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign (repro.faults)",
        description=(
            "Generate and run randomized-but-reproducible fault plans "
            "(crashes, packet loss, partitions, duplication, reordering, "
            "slow disks, socket-buffer shrink) against every selected "
            "write path with Presto on and off, asserting the crash "
            "contract: every client-acked write is durable with correct "
            "content, and fsck finds no structural damage.  Exits 1 on "
            "any violation."
        ),
    )
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed (default: 0)")
    chaos.add_argument(
        "--plans",
        type=int,
        default=5,
        help="plans per write path x presto combination (default: 5)",
    )
    chaos.add_argument(
        "--write-paths",
        nargs="+",
        choices=[member.value for member in WritePath],
        default=[member.value for member in WritePath],
        help="write paths to campaign over (default: all)",
    )
    chaos.add_argument(
        "--presto",
        choices=["off", "on", "both"],
        default="both",
        help="NVRAM accelerator arms to run (default: both)",
    )
    chaos.add_argument(
        "--file-kb", type=int, default=192, help="per-file workload size (default: 192)"
    )
    chaos.add_argument(
        "--payload",
        choices=["full", "flyweight"],
        default="full",
        help="payload fidelity: full bytes (oracle byte-compares) or "
        "flyweight extents (durability-only oracle; default: full)",
    )
    chaos.add_argument("--json", action="store_true", help="emit the full report as JSON")

    sweep_cmd = subparsers.add_parser("sweep", help="sweep one parameter of a file-copy")
    sweep_cmd.add_argument("field", help="TestbedConfig field, or interval_ms / presto_mb")
    sweep_cmd.add_argument("values", nargs="+", help="values to sweep")
    sweep_cmd.add_argument("--net", choices=sorted(_NETWORKS), default="fddi")
    _add_write_path_options(sweep_cmd, siva=False)
    sweep_cmd.add_argument("--biods", type=int, default=7)
    sweep_cmd.add_argument("--file-mb", type=float, default=4.0)
    _add_net_fault_options(sweep_cmd)
    sweep_cmd.add_argument("--json", action="store_true", help="emit results as JSON")

    cluster_cmd = subparsers.add_parser(
        "cluster",
        help="run the sharded server fleet (repro.cluster)",
        description=(
            "Stand up N independent NFS servers behind a consistent-hash "
            "shard map and a client-side mount router, run a seeded "
            "multi-client write workload, and verify the cluster-wide "
            "crash contract.  Multiple --servers or --clients values run "
            "a scaling sweep with a per-cell efficiency table.  Exits 1 "
            "on any oracle violation."
        ),
    )
    cluster_cmd.add_argument(
        "--servers",
        type=int,
        nargs="+",
        default=[2],
        help="fleet size(s); more than one value runs a sweep (default: 2)",
    )
    cluster_cmd.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[4],
        help="client count(s); more than one value runs a sweep (default: 4)",
    )
    cluster_cmd.add_argument(
        "--vnodes", type=int, default=64, help="virtual nodes per server (default: 64)"
    )
    cluster_cmd.add_argument(
        "--racks", type=int, default=1, help="network segments (default: 1)"
    )
    cluster_cmd.add_argument("--net", choices=sorted(_NETWORKS), default="fddi")
    _add_write_path_options(cluster_cmd)
    cluster_cmd.add_argument("--presto", action="store_true", help="NVRAM on every shard")
    cluster_cmd.add_argument("--biods", type=int, default=4)
    cluster_cmd.add_argument("--nfsds", type=int, default=8)
    cluster_cmd.add_argument(
        "--file-kb", type=int, default=64, help="size of each written file (default: 64)"
    )
    cluster_cmd.add_argument(
        "--files", type=int, default=2, help="files written per client (default: 2)"
    )
    cluster_cmd.add_argument("--seed", type=int, default=0)
    cluster_cmd.add_argument(
        "--crash-shard",
        type=int,
        default=None,
        help="crash this shard index mid-run (single-cell runs only)",
    )
    cluster_cmd.add_argument(
        "--crash-at", type=float, default=0.05, help="crash time in seconds (default: 0.05)"
    )
    cluster_cmd.add_argument(
        "--outage",
        type=float,
        default=0.0,
        help="seconds the crashed shard stays partitioned (default: 0)",
    )
    cluster_cmd.add_argument(
        "--redirect",
        action="store_true",
        help="drop the crashed shard from the mount map during the outage",
    )
    cluster_cmd.add_argument("--json", action="store_true", help="emit the result as JSON")

    overload = subparsers.add_parser(
        "overload",
        help="goodput-vs-load sweep past saturation (repro.overload)",
        description=(
            "Drive a client fleet past server saturation through a "
            "mid-run retransmit storm, comparing the paper-era static "
            "1.1 s retransmission schedule against the adaptive stack "
            "(Van Jacobson RTO with Karn's rule and seeded jitter, an "
            "AIMD write window, and server admission control with "
            "dup-cache-aware shedding).  Each combo also crashes the "
            "server mid-storm and asserts that every client-acked write "
            "survived.  Exits 1 on any crash-contract violation, a "
            "non-monotone adaptive curve, or adaptive goodput below "
            "static at the top load."
        ),
    )
    overload.add_argument("--seed", type=int, default=0, help="sweep seed (default: 0)")
    overload.add_argument(
        "--write-paths",
        nargs="+",
        choices=[member.value for member in WritePath],
        default=[member.value for member in WritePath],
        help="write paths to sweep (default: all)",
    )
    overload.add_argument(
        "--presto",
        choices=["off", "on", "both"],
        default="both",
        help="NVRAM accelerator arms to run (default: both)",
    )
    overload.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        metavar="KBS",
        help="per-client offered rates in KB/s, ascending "
        "(default: 3.9 7.8 15.6 46.9 156.2 468.8)",
    )
    overload.add_argument(
        "--clients", type=int, default=12, help="fleet size (default: 12)"
    )
    overload.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="measured window per point, seconds (default: 5)",
    )
    overload.add_argument(
        "--no-adapt",
        action="store_true",
        help="run only the static (no-adaptation) curve",
    )
    overload.add_argument(
        "--adapt-only",
        action="store_true",
        help="run only the adaptive curve",
    )
    overload.add_argument("--json", action="store_true", help="emit the full report as JSON")

    bench = subparsers.add_parser(
        "bench",
        help="run the perf-baseline grid and emit BENCH_<n>.json",
        description=(
            "One seeded file copy per cell of standard/gather/siva x "
            "Presto off/on, reporting throughput, p50/p99 write latency, "
            "and disk writes per MB.  CI uploads the JSON as an artifact "
            "so perf-affecting PRs have a baseline to diff against."
        ),
    )
    bench.add_argument("--net", choices=sorted(_NETWORKS), default="fddi")
    bench.add_argument("--file-mb", type=float, default=2.0, help="copy size (default: 2)")
    bench.add_argument("--biods", type=int, default=7)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the canonical JSON to this file (e.g. BENCH_1.json)",
    )
    bench.add_argument(
        "--payload",
        choices=["full", "flyweight"],
        default="flyweight",
        help="payload fidelity; the grid's simulated numbers are identical "
        "either way, flyweight just runs faster (default: flyweight)",
    )
    bench.add_argument("--json", action="store_true", help="print the report as JSON")

    replica = subparsers.add_parser(
        "replica",
        help="replicated shards under a crash-and-promote storm (repro.replica)",
        description=(
            "Run the sharded write workload once per replication factor "
            "(default K=0, 1, 2) while a seeded storm kills acting "
            "primaries mid-run.  With K>0 each kill promotes the shard's "
            "freshest backup; the group oracle asserts that no acked "
            "write is ever missing from the surviving replica set, and a "
            "post-quiesce pass byte-compares the survivors.  The K=0 arm "
            "is the unreplicated baseline, so the report prices the "
            "guarantee: p99 write latency and throughput vs K=0.  Exits "
            "1 on any violation."
        ),
    )
    replica.add_argument(
        "--servers", type=int, default=3, help="shard count (default: 3)"
    )
    replica.add_argument(
        "--clients", type=int, default=6, help="client count (default: 6)"
    )
    replica.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[0, 1, 2],
        metavar="K",
        help="backups per shard; each value is one arm (default: 0 1 2)",
    )
    replica.add_argument(
        "--quorum",
        type=int,
        default=1,
        help="backup acks required before a write is acked (default: 1)",
    )
    replica.add_argument(
        "--files", type=int, default=2, help="files written per client (default: 2)"
    )
    replica.add_argument(
        "--file-kb", type=int, default=64, help="size of each written file (default: 64)"
    )
    replica.add_argument(
        "--crashes",
        type=int,
        default=3,
        help="primary kills in the storm, round-robin over shards (default: 3)",
    )
    replica.add_argument("--net", choices=sorted(_NETWORKS), default="fddi")
    replica.add_argument("--seed", type=int, default=0)
    replica.add_argument(
        "--payload",
        choices=["full", "flyweight"],
        default="full",
        help="payload fidelity: full bytes (group oracle byte-compares) or "
        "flyweight extents (durability-only; default: full)",
    )
    replica.add_argument("--json", action="store_true", help="emit the result as JSON")

    cache = subparsers.add_parser(
        "cache",
        help="lease-cache RPC-reduction sweep + staleness chaos probes (repro.lease)",
        description=(
            "Measure what client-side caching under server-granted "
            "leases buys: RPCs per user operation on a shared-read/"
            "private-write workload, swept over lease TTL x sharing "
            "ratio with leases on vs off, plus compact before/after "
            "profiles of the copy, LADDIS, cluster, and overload "
            "workloads.  Then probe the staleness contract under chaos "
            "(server crash mid-recall, a severed callback path, a "
            "holder partitioned past its TTL) with an omniscient "
            "oracle watching every served cache hit.  Exits 1 on any "
            "staleness violation or if the headline cell misses its "
            "required reduction."
        ),
    )
    cache.add_argument("--seed", type=int, default=0, help="sweep seed (default: 0)")
    cache.add_argument(
        "--ttls",
        type=float,
        nargs="+",
        default=None,
        metavar="SEC",
        help="lease TTL axis in seconds (default: 1 5 30; must include "
        "the headline TTL)",
    )
    cache.add_argument(
        "--sharing",
        type=float,
        nargs="+",
        default=None,
        metavar="RATIO",
        help="shared-read fractions in [0,1] (default: 0.25 0.5 0.9; "
        "must include the headline ratio)",
    )
    cache.add_argument(
        "--clients", type=int, default=4, help="fleet size (default: 4)"
    )
    cache.add_argument(
        "--ops", type=int, default=30, help="operations per client (default: 30)"
    )
    cache.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the chaos probes (sweep and workload profiles only)",
    )
    cache.add_argument("--json", action="store_true", help="emit the full report as JSON")

    commit_cmd = subparsers.add_parser(
        "commit",
        help="async WRITE+COMMIT three-way comparison + verifier probes (repro.commit)",
        description=(
            "Compare the async_commit write path (unstable WRITEs acked "
            "from volatile memory, boot verifiers, explicit COMMIT) "
            "against the standard and gather paths on the seeded bench "
            "copy, open both memory-pressure valves against a shrunken "
            "volatile ceiling, run the K=1 crash-and-promote storm on "
            "both paths, and probe the verifier lifecycle under chaos "
            "(crash mid-unstable-window, crash between WRITE and COMMIT, "
            "promotion mid-COMMIT).  Exits 1 on any oracle violation or "
            "if async_commit fails to beat the standard path on p50 "
            "write latency and throughput."
        ),
    )
    commit_cmd.add_argument("--seed", type=int, default=0)
    commit_cmd.add_argument(
        "--file-mb",
        type=float,
        default=1.0,
        help="bench copy size in MB (default: 1.0)",
    )
    commit_cmd.add_argument(
        "--biods", type=int, default=7, help="client write-behind depth (default: 7)"
    )
    commit_cmd.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the verifier-lifecycle chaos probes",
    )
    commit_cmd.add_argument(
        "--out", help="also write the canonical JSON report to this file"
    )
    commit_cmd.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    scrub_cmd = subparsers.add_parser(
        "scrub",
        help="end-to-end integrity sweep: corruption x scrub bandwidth x K "
        "(repro.integrity)",
        description=(
            "Run the seeded write workload under a media-fault storm (bit "
            "rot, latent sector errors, a torn write and an NVRAM battery "
            "degrade cashed in by a mid-run crash) while a background "
            "scrubber walks the durable image verifying per-block "
            "checksums.  With replicas (K>=1) every defect must self-heal "
            "from a replica-group peer; standalone (K=0) every defect "
            "must surface as a quarantine + EIO.  In every arm, zero "
            "acked READs may return bytes differing from the acked write "
            "image.  Exits 1 on any silent corruption, missed "
            "convergence, or unhealed defect at K>=1."
        ),
    )
    scrub_cmd.add_argument("--seed", type=int, default=0)
    scrub_cmd.add_argument(
        "--clients", type=int, default=3, help="client hosts (default: 3)"
    )
    scrub_cmd.add_argument(
        "--files-per-client", type=int, default=2, help="files each (default: 2)"
    )
    scrub_cmd.add_argument(
        "--file-kb", type=int, default=32, help="file size in KB (default: 32)"
    )
    scrub_cmd.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.25],
        metavar="R",
        help="corruption rates to sweep, fraction of durable blocks "
        "afflicted per media fault (default: 0.25)",
    )
    scrub_cmd.add_argument(
        "--bandwidths",
        type=float,
        nargs="+",
        default=[2 << 20, 8 << 20],
        metavar="BPS",
        help="scrub read bandwidths in bytes/sec (default: 2MiB 8MiB)",
    )
    scrub_cmd.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[0, 1],
        metavar="K",
        help="replication factors to sweep (default: 0 1)",
    )
    scrub_cmd.add_argument(
        "--out", help="also write the canonical JSON report to this file"
    )
    scrub_cmd.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    tiering_cmd = subparsers.add_parser(
        "tiering",
        help="heterogeneous-tier placement sweep + crash-safe migration "
        "storm (repro.tiering)",
        description=(
            "Run the Zipf-hot multi-tenant append workload against an "
            "all-cold fleet (the baseline) and against a mixed fleet "
            "whose hot tier carries Presto NVRAM, once per placement "
            "policy.  Then replay it with replication while a "
            "MigrationEngine live-demotes the hottest files hot->cold "
            "under injected shard crashes, a network partition, and "
            "replica promotions timed to land mid-copy.  The migration "
            "contract — every acked range satisfiable at exactly one "
            "authoritative location — is checked at every fault and at "
            "quiesce.  Exits 1 on any oracle violation."
        ),
    )
    tiering_cmd.add_argument("--seed", type=int, default=0)
    tiering_cmd.add_argument(
        "--tenants", type=int, default=6, help="tenant clients (default: 6)"
    )
    tiering_cmd.add_argument(
        "--files-per-tenant", type=int, default=4, help="files each (default: 4)"
    )
    tiering_cmd.add_argument(
        "--ops", type=int, default=48, help="appends per tenant (default: 48)"
    )
    tiering_cmd.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="per-tenant Zipf skew; 0 = uniform (default: 1.1)",
    )
    tiering_cmd.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="POLICY",
        help="placement policies to sweep (default: hash mfs least-load "
        "hot-first)",
    )
    tiering_cmd.add_argument(
        "--out", help="also write the canonical JSON report to this file"
    )
    tiering_cmd.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    return parser


def _cmd_table(args) -> int:
    result = run(ExperimentSpec(kind="table", table=args.number, file_mb=args.file_mb))
    if args.json:
        print(json.dumps(table_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(result.render())
    print()
    paper = PAPER[args.number]
    for variant, label in (("std", "Without gathering"), ("gather", "With gathering")):
        print(
            format_comparison(
                f"{label} — client write speed (measured vs paper)",
                result.spec.biods,
                result.series(variant, "speed"),
                paper[variant]["speed"],
            )
        )
    return 0


def _cmd_copy(args) -> int:
    try:
        write_path = _resolve_write_path(args)
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = _config_from_args(args, write_path, tracing=args.json)
    metrics = run(ExperimentSpec(kind="copy", config=config, file_mb=args.file_mb))
    if args.json:
        print(json.dumps(metrics.to_json(), indent=2, sort_keys=True))
        return 0
    print(f"configuration: {metrics.label}, {args.biods} biods, {args.file_mb} MB copy")
    for name, value in metrics.row().items():
        print(f"  {name:<32} {value}")
    if metrics.mean_batch_size is not None:
        print(f"  {'mean gathered batch size':<32} {metrics.mean_batch_size:.1f}")
        print(f"  {'gather success rate':<32} {metrics.gather_success_rate:.0%}")
        print(f"  {'procrastinations':<32} {metrics.procrastinations:.0f}")
    return 0


def _cmd_trace(args) -> int:
    sides = run(ExperimentSpec(kind="trace"))
    for name in ("standard", "gathering"):
        side = sides[name]
        print(f"=== {name} server — window from {side['window_start_ms']:.1f} ms ===")
        print(side["rendered"])
        print(
            f"--> {side['writes']} writes, {side['disk_transactions']} disk "
            f"transactions, {side['replies']} replies\n"
        )
    return 0


def _cmd_laddis(args) -> int:
    curves = {
        name: run(
            ExperimentSpec(
                kind="curve",
                write_path=path,
                presto=args.presto,
                loads=args.loads,
                duration=args.duration,
                loss_rate=args.loss_rate,
                net_seed=args.net_seed,
            )
        )
        for name, path in (("standard", WritePath.STANDARD), ("gathering", WritePath.GATHER))
    }
    print(f"{'offered':>8} {'std ops/s':>10} {'std ms':>8} {'gat ops/s':>10} {'gat ms':>8}")
    for s_point, g_point in zip(curves["standard"].points, curves["gathering"].points):
        print(
            f"{s_point.offered:8.0f} {s_point.achieved:10.0f} {s_point.latency_ms:8.1f}"
            f" {g_point.achieved:10.0f} {g_point.latency_ms:8.1f}"
        )
    std_cap = curves["standard"].capacity()
    gat_cap = curves["gathering"].capacity()
    delta = 100 * (gat_cap / std_cap - 1) if std_cap else float("nan")
    print(f"capacity: standard {std_cap:.0f}, gathering {gat_cap:.0f} ({delta:+.0f}%)")
    return 0


def _cmd_claims(_args) -> int:
    print("Headline results (2 MB copies for speed; benches run full scale):")
    rows = [
        ("FDDI @7 biods, standard", TestbedConfig(netspec=FDDI, write_path="standard", nbiods=7)),
        ("FDDI @7 biods, gathering", TestbedConfig(netspec=FDDI, write_path="gather", nbiods=7)),
        ("Ethernet @0 biods, standard", TestbedConfig(netspec=ETHERNET, write_path="standard", nbiods=0)),
        ("Ethernet @0 biods, gathering", TestbedConfig(netspec=ETHERNET, write_path="gather", nbiods=0)),
        (
            "Eth+Presto @7 biods, standard",
            TestbedConfig(netspec=ETHERNET, write_path="standard", nbiods=7, presto_bytes=1 << 20),
        ),
        (
            "Eth+Presto @7 biods, gathering",
            TestbedConfig(netspec=ETHERNET, write_path="gather", nbiods=7, presto_bytes=1 << 20),
        ),
    ]
    for label, config in rows:
        metrics = run(ExperimentSpec(kind="copy", config=config, file_mb=2))
        print(
            f"  {label:<32} {metrics.client_kb_per_sec:7.0f} KB/s  "
            f"cpu {metrics.server_cpu_pct:4.1f}%  disk {metrics.disk_trans_per_sec:5.1f} t/s"
        )
    return 0


def _cmd_chaos(args) -> int:
    presto_modes = {"off": (False,), "on": (True,), "both": (False, True)}[args.presto]

    def progress(result) -> None:
        if not args.json:
            presto = "presto" if result.presto else "plain "
            status = "ok" if result.clean else "VIOLATION"
            print(
                f"  {result.plan.name:<24} {presto} "
                f"acked={result.acked_writes:<4} crashes={result.crashes} "
                f"retrans={result.retransmissions:<3} {status}"
            )

    if not args.json:
        combos = len(args.write_paths) * len(presto_modes)
        print(
            f"chaos campaign: seed={args.seed}, {args.plans} plans x "
            f"{combos} combos, {args.file_kb} KB files"
        )
    report = run(
        ExperimentSpec(
            kind="chaos",
            seed=args.seed,
            plans=args.plans,
            write_paths=args.write_paths,
            presto_modes=presto_modes,
            file_kb=args.file_kb,
            payload=args.payload,
            progress=progress,
        )
    )
    if args.json:
        print(report.to_json())
    else:
        summary = report.to_dict()
        print(
            f"ran {summary['plans_run']} plans: "
            f"{summary['total_acked_writes']} acked writes, "
            f"{summary['total_crashes']} crashes, "
            f"{summary['total_retransmissions']} retransmissions"
        )
        if report.clean:
            print("crash contract held: zero violations")
        else:
            print(f"{len(report.violations)} VIOLATIONS:")
            for violation in report.violations:
                print(f"  {violation}")
    return 0 if report.clean else 1


def _cmd_overload(args) -> int:
    from repro.overload import MODES, OverloadConfig

    if args.no_adapt and args.adapt_only:
        print("--no-adapt and --adapt-only are mutually exclusive", file=sys.stderr)
        return 2
    modes = MODES
    if args.no_adapt:
        modes = ("static",)
    elif args.adapt_only:
        modes = ("adaptive",)
    presto_modes = {"off": (False,), "on": (True,), "both": (False, True)}[args.presto]
    kwargs = {}
    if args.loads is not None:
        kwargs["loads"] = tuple(int(round(kb * 1024)) for kb in args.loads)
    config = OverloadConfig(
        seed=args.seed,
        write_paths=tuple(args.write_paths),
        presto_modes=presto_modes,
        modes=modes,
        clients=args.clients,
        duration=args.duration,
        **kwargs,
    )

    def progress(line: str) -> None:
        if not args.json:
            print(f"  {line}")

    if not args.json:
        loads_kbs = ", ".join(f"{rate / 1024:.1f}" for rate in config.loads)
        print(
            f"overload sweep: seed={config.seed}, {config.clients} clients, "
            f"loads [{loads_kbs}] KB/s each, modes {'+'.join(config.modes)}"
        )
    report = run(ExperimentSpec(kind="overload", config=config, progress=progress))
    if args.json:
        print(report.to_json())
    else:
        for combo in report.combos:
            tag = f"{combo['write_path']}/presto={'on' if combo['presto'] else 'off'}"
            for mode, curve in combo["curves"].items():
                shape = "COLLAPSE" if curve["collapse"] else (
                    "plateau" if curve["monotone_nondecreasing"] else "noisy"
                )
                print(f"  {tag:<24} {mode:<8} top {curve['goodput_kbs'][-1]:7.1f} KB/s  {shape}")
            verdict = combo.get("verdict")
            if verdict is not None:
                outcome = "holds" if verdict["adaptation_wins"] else "FAILS"
                print(
                    f"  {tag:<24} adaptation {outcome}: "
                    f"{verdict['adaptive_top_goodput_kbs']:.1f} vs "
                    f"{verdict['static_top_goodput_kbs']:.1f} KB/s at top load"
                )
        if report.clean:
            print("crash contract held: zero violations")
        else:
            print(f"{len(report.violations)} VIOLATIONS:")
            for violation in report.violations:
                print(f"  {violation}")
    return 0 if report.clean and report.adaptation_holds else 1


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _cmd_sweep(args) -> int:
    from repro.experiments import sweepable_fields

    if args.field not in sweepable_fields():
        print(
            f"unknown field {args.field!r}; choose from "
            f"{', '.join(sorted(sweepable_fields()))}",
            file=sys.stderr,
        )
        return 2
    try:
        write_path = _resolve_write_path(args)
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        return 2
    base = TestbedConfig(
        netspec=_NETWORKS[args.net],
        write_path=write_path,
        nbiods=args.biods,
        loss_rate=args.loss_rate,
        net_seed=args.net_seed,
    )
    values = [_parse_value(v) for v in args.values]
    results = run(
        ExperimentSpec(
            kind="sweep",
            config=base,
            sweep_field=args.field,
            values=values,
            file_mb=args.file_mb,
        )
    )
    if args.json:
        payload = {
            "field": args.field,
            "values": values,
            "results": [metrics.to_json() for metrics in results],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.field:>14} {'KB/s':>8} {'cpu %':>7} {'disk t/s':>9} {'batch':>7}")
    for value, metrics in zip(values, results):
        batch = f"{metrics.mean_batch_size:6.1f}" if metrics.mean_batch_size else "     -"
        print(
            f"{str(value):>14} {metrics.client_kb_per_sec:>8.0f} "
            f"{metrics.server_cpu_pct:>7.1f} {metrics.disk_trans_per_sec:>9.1f} {batch}"
        )
    return 0


def _cluster_config_from_args(args, write_path: WritePath, servers: int):
    from repro.cluster import ClusterConfig

    return ClusterConfig(
        servers=servers,
        vnodes=args.vnodes,
        racks=args.racks,
        netspec=_NETWORKS[args.net],
        write_path=write_path,
        nbiods=args.biods,
        nfsds=args.nfsds,
        presto_bytes=(1 << 20) if args.presto else None,
        seed=args.seed,
    )


def _print_cluster_result(result) -> None:
    print(
        f"cluster: {result.servers} servers x {result.clients} clients, "
        f"{result.write_path} path, seed {result.seed}"
    )
    print(
        f"  aggregate {result.aggregate_kb_per_sec:.0f} KB/s over "
        f"{result.total_bytes // 1024} KB in {result.elapsed * 1000:.1f} ms"
    )
    ratio = result.mean_gather_ratio()
    if ratio is not None:
        print(f"  mean gather ratio {ratio:.3f}")
    print(f"{'shard':<12} {'files':>5} {'writes':>7} {'disk KB':>8} {'cpu %':>6} {'gather':>7}")
    for shard in result.per_shard:
        host = shard["host"]
        gather = (
            f"{shard['gather_ratio']:7.3f}" if "gather_ratio" in shard else "      -"
        )
        print(
            f"{host:<12} {result.placement.get(host, 0):>5} "
            f"{shard['writes_completed']:>7} {shard['disk_bytes'] // 1024:>8} "
            f"{shard['cpu_pct']:>6.1f} {gather}"
        )
    for fault in result.faults:
        window = f"{fault['start'] * 1000:.1f}-{fault['end'] * 1000:.1f} ms"
        redirected = " (redirected)" if fault["redirected"] else ""
        print(f"  fault: {fault['host']} crashed at {window}{redirected}")
    print(
        f"  oracle: {result.acked_writes} acked writes, {result.oracle_checks} checks, "
        f"{result.crashes} crashes, {result.retransmissions} retransmissions"
    )
    if result.clean:
        print("  crash contract held: zero violations")
    else:
        print(f"  {len(result.violations)} VIOLATIONS:")
        for violation in result.violations:
            print(f"    {violation}")


def _cmd_cluster(args) -> int:
    from repro.cluster import ShardCrash

    try:
        write_path = _resolve_write_path(args)
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        return 2
    sweep_mode = len(args.servers) > 1 or len(args.clients) > 1
    if sweep_mode:
        if args.crash_shard is not None:
            print("--crash-shard only applies to single-cell runs", file=sys.stderr)
            return 2
        base = _cluster_config_from_args(args, write_path, servers=args.servers[0])

        def progress(row) -> None:
            if not args.json:
                print(
                    f"  ran {row.servers} servers x {row.clients} clients: "
                    f"{row.aggregate_kb_per_sec:.0f} KB/s"
                )

        sweep = run(
            ExperimentSpec(
                kind="cluster",
                config=base,
                server_counts=args.servers,
                client_counts=args.clients,
                files_per_client=args.files,
                file_kb=args.file_kb,
                progress=progress,
            )
        )
        if args.json:
            print(sweep.to_json())
        else:
            print(
                f"{'servers':>8} {'clients':>8} {'KB/s':>9} {'gather':>7} "
                f"{'efficiency':>10} {'clean':>6}"
            )
            for row in sweep.table():
                gather = (
                    f"{row['mean_gather_ratio']:7.3f}"
                    if row["mean_gather_ratio"] is not None
                    else "      -"
                )
                efficiency = (
                    f"{row['scaling_efficiency']:10.3f}"
                    if "scaling_efficiency" in row
                    else "         -"
                )
                print(
                    f"{row['servers']:>8} {row['clients']:>8} "
                    f"{row['aggregate_kb_per_sec']:>9.0f} {gather} {efficiency} "
                    f"{'ok' if row['clean'] else 'BAD':>6}"
                )
        return 0 if sweep.clean else 1
    crashes = None
    if args.crash_shard is not None:
        crashes = [
            ShardCrash(
                at=args.crash_at,
                shard=args.crash_shard,
                outage=args.outage,
                redirect=args.redirect,
            )
        ]
    config = _cluster_config_from_args(args, write_path, servers=args.servers[0])
    result = run(
        ExperimentSpec(
            kind="cluster",
            config=config,
            clients=args.clients[0],
            files_per_client=args.files,
            file_kb=args.file_kb,
            crashes=crashes,
        )
    )
    if args.json:
        print(result.to_json())
    else:
        _print_cluster_result(result)
    return 0 if result.clean else 1


def _cmd_replica(args) -> int:
    from repro.cluster import ClusterConfig

    config = ClusterConfig(
        servers=args.servers,
        netspec=_NETWORKS[args.net],
        write_path=WritePath.GATHER,
        quorum=args.quorum,
        seed=args.seed,
    )

    def progress(arm) -> None:
        if not args.json:
            print(
                f"  K={arm.replicas} quorum={arm.quorum}: "
                f"{arm.aggregate_kb_per_sec:>8.0f} KB/s  "
                f"p50 {arm.write_latency_ms['p50']:>7.2f} ms  "
                f"p99 {arm.write_latency_ms['p99']:>7.2f} ms  "
                f"{arm.crashes} crashes, {arm.promotions} promotions, "
                f"{'clean' if arm.clean else 'VIOLATIONS'}"
            )

    if not args.json:
        print(
            f"replica: {args.servers} shards x {args.clients} clients, "
            f"{args.crashes}-crash storm, seed {args.seed}"
        )
    result = run(
        ExperimentSpec(
            kind="replica",
            config=config,
            replica_counts=args.replicas,
            clients=args.clients,
            files_per_client=args.files,
            file_kb=args.file_kb,
            storm_crashes=args.crashes,
            payload=args.payload,
            progress=progress,
        )
    )
    if args.json:
        print(result.to_json())
    else:
        for row in result.comparison():
            print(
                f"  K={row['replicas']} vs K=0: "
                f"p99 write latency x{row['p99_write_latency_vs_k0']}, "
                f"throughput x{row['throughput_vs_k0']}"
            )
        for arm in result.arms:
            for violation in arm.violations:
                print(f"  K={arm.replicas} VIOLATION: {violation}")
        if result.clean:
            print("  zero-acked-write-loss guarantee held across every arm")
    return 0 if result.clean else 1


def _cmd_cache(args) -> int:
    from repro.lease.experiment import CacheConfig

    kwargs = {}
    if args.ttls is not None:
        kwargs["lease_ttls"] = tuple(args.ttls)
    if args.sharing is not None:
        kwargs["sharing_ratios"] = tuple(args.sharing)
    try:
        config = CacheConfig(
            seed=args.seed,
            clients=args.clients,
            ops_per_client=args.ops,
            chaos=not args.no_chaos,
            **kwargs,
        )
    except ValueError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 2

    def progress(line: str) -> None:
        if not args.json:
            print(f"  {line}")

    if not args.json:
        ttls = ", ".join(f"{t:g}" for t in config.lease_ttls)
        ratios = ", ".join(f"{s:g}" for s in config.sharing_ratios)
        print(
            f"cache sweep: seed={config.seed}, {config.clients} clients, "
            f"TTLs [{ttls}] s x sharing [{ratios}]"
        )
    report = run(ExperimentSpec(kind="cache", config=config, progress=progress))
    if args.json:
        print(report.to_json())
    else:
        cell = report.headline
        if cell is not None:
            verdict = "meets" if report.meets_target else "MISSES"
            print(
                f"  headline (ttl={config.headline_ttl:g}s, "
                f"sharing={config.headline_sharing:g}): "
                f"x{cell['reduction']:g} reduction — {verdict} the "
                f"x{config.min_reduction:g} target"
            )
        if report.clean:
            print("  staleness contract held: zero violations")
        else:
            print(f"  {len(report.violations)} VIOLATIONS:")
            for violation in report.violations:
                print(f"    {violation}")
    return 0 if report.clean and report.meets_target else 1


def _cmd_commit(args) -> int:
    from repro.commit.experiment import CommitConfig

    try:
        config = CommitConfig(
            seed=args.seed,
            file_mb=args.file_mb,
            biods=args.biods,
            chaos=not args.no_chaos,
        )
    except ValueError as exc:
        print(f"commit: {exc}", file=sys.stderr)
        return 2

    def progress(line: str) -> None:
        if not args.json:
            print(f"  {line}")

    if not args.json:
        print(
            f"commit: {config.file_mb} MB copy x "
            f"{'/'.join(config.write_paths)}, seed {config.seed}"
        )
    report = run(ExperimentSpec(kind="commit", config=config, progress=progress))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        if not args.json:
            print(f"wrote {args.out}")
    if args.json:
        print(report.to_json())
    else:
        comparison = report.comparison
        if comparison is not None:
            verdict = "beats" if report.async_beats_standard else "DOES NOT BEAT"
            print(
                f"  async_commit {verdict} standard: "
                f"p50 x{comparison['p50_vs_standard']}, "
                f"throughput x{comparison['throughput_vs_standard']}"
            )
        if report.clean:
            print("  commit contract held: zero violations")
        else:
            print(f"  {len(report.violations)} VIOLATIONS:")
            for violation in report.violations:
                print(f"    {violation}")
    return 0 if report.ok else 1


def _cmd_scrub(args) -> int:
    from repro.integrity.experiment import ScrubConfig

    try:
        config = ScrubConfig(
            seed=args.seed,
            clients=args.clients,
            files_per_client=args.files_per_client,
            file_kb=args.file_kb,
            corruption_rates=tuple(args.rates),
            scrub_bandwidths=tuple(args.bandwidths),
            replica_counts=tuple(args.replicas),
        )
    except ValueError as exc:
        print(f"scrub: {exc}", file=sys.stderr)
        return 2

    def progress(arm) -> None:
        if not args.json:
            healed = (
                f"{arm.repairs} repaired"
                if arm.replicas
                else f"{arm.quarantines} quarantined, {arm.eio_reads} EIO"
            )
            print(
                f"  K={arm.replicas} rate={arm.corruption_rate} "
                f"bw={arm.scrub_bandwidth / (1 << 20):.0f}MiB/s: "
                f"{arm.detections} detected, {healed}, "
                f"{arm.silent_read_corruptions} silent "
                f"[{'clean' if arm.clean else 'DIRTY'}]"
            )

    if not args.json:
        print(
            f"scrub: {config.clients} clients x {config.files_per_client} "
            f"files x {config.file_kb} KB, seed {config.seed}"
        )
    report = run(ExperimentSpec(kind="scrub", config=config, progress=progress))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        if not args.json:
            print(f"wrote {args.out}")
    if args.json:
        print(report.to_json())
    else:
        if report.clean:
            print("  integrity contract held: nothing silent, all healed/surfaced")
        else:
            for arm in report.arms:
                if arm.clean:
                    continue
                print(
                    f"  DIRTY arm K={arm.replicas} rate={arm.corruption_rate} "
                    f"bw={arm.scrub_bandwidth}:"
                )
                for violation in arm.violations:
                    print(f"    {violation}")
    return 0 if report.clean else 1


def _cmd_tiering(args) -> int:
    from repro.tiering.experiment import POLICY_NAMES, TieringConfig

    try:
        config = TieringConfig(
            seed=args.seed,
            tenants=args.tenants,
            files_per_tenant=args.files_per_tenant,
            ops_per_tenant=args.ops,
            skew=args.skew,
            policies=tuple(args.policies) if args.policies else POLICY_NAMES,
        )
    except ValueError as exc:
        print(f"tiering: {exc}", file=sys.stderr)
        return 2

    def progress(arm) -> None:
        if args.json:
            return
        if isinstance(arm, dict):  # the storm report
            print(
                f"  storm: {arm['completed']}/{arm['started']} migrations, "
                f"{arm['crashes']} crashes, {arm['promotions']} promotions "
                f"[{'clean' if arm['clean'] else 'DIRTY'}]"
            )
            return
        latency = arm.write_latency_ms
        print(
            f"  {arm.fleet:<8} {arm.policy:<10} "
            f"p50 {latency['p50']:>8.2f} ms  p99 {latency['p99']:>8.2f} ms  "
            f"{arm.placement['files_by_tier']} "
            f"[{'clean' if arm.clean else 'DIRTY'}]"
        )

    if not args.json:
        print(
            f"tiering: {config.tenants} tenants x {config.files_per_tenant} "
            f"files x {config.ops_per_tenant} appends, skew {config.skew}, "
            f"seed {config.seed}"
        )
    result = run(ExperimentSpec(kind="tiering", config=config, progress=progress))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(result.to_json())
            handle.write("\n")
        if not args.json:
            print(f"wrote {args.out}")
    if args.json:
        print(result.to_json())
    else:
        verdict = "beats" if result.hot_beats_cold else "DOES NOT BEAT"
        print(f"  mixed fleet {verdict} all-cold on p99 write latency")
        if result.clean:
            print("  migration contract held: zero violations")
        else:
            for arm in result.arms:
                for violation in arm.violations:
                    print(f"    {violation}")
            for violation in result.storm.get("violations", []):
                print(f"    {violation}")
    return 0 if result.clean else 1


def _cmd_bench(args) -> int:
    from repro.experiments.bench import bench_to_json, write_bench

    def progress(cell) -> None:
        if not args.json:
            presto = "presto" if cell["presto"] else "plain "
            print(
                f"  {cell['write_path']:<8} {presto} "
                f"{cell['client_kb_per_sec']:>8.1f} KB/s  "
                f"p50 {cell['write_latency_ms']['p50']:>7.2f} ms  "
                f"p99 {cell['write_latency_ms']['p99']:>7.2f} ms  "
                f"{cell['disk_writes_per_mb']:>6.1f} dw/MB"
            )

    if not args.json:
        print(
            f"bench: {args.net}, {args.file_mb} MB copy, {args.biods} biods, "
            f"seed {args.seed}"
        )
    report = run(
        ExperimentSpec(
            kind="bench",
            net=args.net,
            file_mb=args.file_mb,
            biods=args.biods,
            seed=args.seed,
            payload=args.payload,
            progress=progress,
        )
    )
    if args.out:
        write_bench(report, args.out)
        if not args.json:
            print(f"wrote {args.out}")
    if args.json:
        print(bench_to_json(report))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "table": _cmd_table,
        "copy": _cmd_copy,
        "trace": _cmd_trace,
        "laddis": _cmd_laddis,
        "claims": _cmd_claims,
        "chaos": _cmd_chaos,
        "overload": _cmd_overload,
        "sweep": _cmd_sweep,
        "cluster": _cmd_cluster,
        "replica": _cmd_replica,
        "bench": _cmd_bench,
        "cache": _cmd_cache,
        "commit": _cmd_commit,
        "scrub": _cmd_scrub,
        "tiering": _cmd_tiering,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
