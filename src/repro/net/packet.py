"""Datagrams: what travels across a simulated segment.

A datagram carries an arbitrary payload object (an RPC call or reply) plus
its wire size; the segment fragments it into MTU-sized frames for
transmission timing, and the receiving host pays per-frame CPU to reassemble
it (§4.1's "server CPU overhead due to packet reassembly").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Datagram"]

_sequence = itertools.count(1)


@dataclass(slots=True)
class Datagram:
    """A UDP datagram in flight or queued in a socket buffer."""

    src: str
    dst: str
    payload: Any
    #: UDP payload size in bytes (data + protocol headers above IP).
    size: int
    #: Number of frames this datagram was fragmented into (set on send).
    fragments: int = 1
    #: Monotonic id, for deterministic tie-breaking and tracing.
    seq: int = field(default_factory=lambda: next(_sequence))
    #: When this datagram entered the destination's socket buffer (set on
    #: delivery; socket-buffer residency spans are measured from it).
    arrived_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"datagram size must be positive, got {self.size}")
