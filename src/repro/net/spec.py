"""Network technology parameters (Ethernet and FDDI, as in the paper).

The paper's procrastination intervals are transport dependent: "approx. 8
msec for Ethernet or multi-segment requests and 5 msec for FDDI based
requests" (§6.6) — so the gather interval lives here with the other
per-technology constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetSpec", "ETHERNET", "FDDI"]


@dataclass(frozen=True)
class NetSpec:
    """Static parameters of a network segment technology."""

    name: str
    #: Raw signalling rate in bits/second.
    bandwidth_bps: float
    #: Maximum transmission unit (payload bytes per frame).
    mtu: int
    #: Per-frame header/trailer overhead bytes on the wire.
    frame_overhead: int
    #: One-way propagation + driver latency per frame, seconds.
    latency: float
    #: Host CPU seconds to process one received/sent frame (interrupt,
    #: reassembly work); Ethernet's small MTU is what makes its per-request
    #: CPU cost high.
    cpu_per_frame: float
    #: The paper's empirically derived procrastination interval (§6.6).
    gather_interval: float

    def frames_for(self, payload_bytes: int) -> int:
        """Number of frames a datagram of ``payload_bytes`` fragments into."""
        if payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {payload_bytes}")
        return -(-payload_bytes // self.mtu)  # ceil division

    def wire_time(self, payload_bytes: int) -> float:
        """Pure transmission time of a datagram, all fragments."""
        frames = self.frames_for(payload_bytes)
        wire_bytes = payload_bytes + frames * self.frame_overhead
        return wire_bytes * 8.0 / self.bandwidth_bps


#: 10 Mb/s shared Ethernet: 1500-byte MTU, 8K writes fragment into 6 frames.
ETHERNET = NetSpec(
    name="ethernet",
    bandwidth_bps=10e6,
    mtu=1500,
    frame_overhead=42,
    latency=0.0004,
    cpu_per_frame=0.0003,
    gather_interval=0.008,
)

#: 100 Mb/s FDDI ring: 4352-byte MTU, 8K writes fragment into 2 frames.
FDDI = NetSpec(
    name="fddi",
    bandwidth_bps=100e6,
    mtu=4352,
    frame_overhead=67,
    latency=0.0002,
    cpu_per_frame=0.00012,
    gather_interval=0.005,
)
