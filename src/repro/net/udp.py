"""UDP endpoints with bounded, inspectable socket buffers.

The server's incoming request queue *is* its NFS socket buffer (§4.2): a
fixed-size mbuf pool (DEC OSF/1 used at most 0.25 MB).  When it fills,
arriving requests are silently dropped and client retransmission takes
over.  The gathering server's "mbuf hunter" (§6.5) scans this buffer for
additional write requests to the same file and can steal them out of order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.net.packet import Datagram
from repro.sim import Environment, Event

__all__ = ["UdpEndpoint", "SocketBuffer"]


class SocketBuffer:
    """A byte-bounded FIFO of datagrams with blocking get and steal."""

    def __init__(self, env: Environment, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"socket buffer must be positive, got {capacity_bytes}")
        self.env = env
        self.capacity_bytes = capacity_bytes
        self.items: Deque[Datagram] = deque()
        self.used_bytes = 0
        self._getters: Deque[Event] = deque()
        #: Optional admission controller (repro.overload): consulted before
        #: the byte-capacity check; False from its ``admit`` sheds the
        #: arriving datagram deliberately instead of by silent overflow.
        self.admission = None

    def __len__(self) -> int:
        return len(self.items)

    def try_put(self, datagram: Datagram) -> bool:
        """Queue a datagram, or return False (drop) if it does not fit."""
        if self.admission is not None and not self.admission.admit(self, datagram):
            return False
        if self.used_bytes + datagram.size > self.capacity_bytes:
            return False
        datagram.arrived_at = self.env.now
        self.items.append(datagram)
        self.used_bytes += datagram.size
        self._dispatch()
        return True

    def get(self) -> Event:
        """Wait for the oldest datagram."""
        event = self.env.event()
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Optional[Datagram]:
        if self.items and not self._getters:
            return self._pop()
        return None

    def evict_oldest(self) -> Optional[Datagram]:
        """Remove and return the oldest queued datagram (drop-oldest shed).

        Only meaningful while the queue is non-empty; getters are never
        parked while items are queued, so no waiter can be starved by it.
        """
        if not self.items:
            return None
        return self._pop()

    def steal(self, predicate: Callable[[Datagram], bool]) -> Optional[Datagram]:
        """Remove the first queued datagram matching ``predicate``."""
        for index, datagram in enumerate(self.items):
            if predicate(datagram):
                del self.items[index]
                self.used_bytes -= datagram.size
                return datagram
        return None

    def scan(self, predicate: Callable[[Datagram], bool]) -> List[Datagram]:
        """Return (without removing) queued datagrams matching ``predicate``."""
        return [datagram for datagram in self.items if predicate(datagram)]

    def reset_volatile(self) -> None:
        """Drop every queued datagram (crash: the mbuf pool is RAM).

        Waiting getters stay parked — the post-reboot nfsds simply block
        until fresh traffic (client retransmissions) arrives.
        """
        self.items.clear()
        self.used_bytes = 0

    def _pop(self) -> Datagram:
        datagram = self.items.popleft()
        self.used_bytes -= datagram.size
        return datagram

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self._pop())


class UdpEndpoint:
    """A host's attachment to a segment."""

    def __init__(self, env: Environment, host: str, segment, buffer_bytes: int) -> None:
        self.env = env
        self.host = host
        self.segment = segment
        self.inbox = SocketBuffer(env, buffer_bytes)

    def send(self, dst: str, payload: Any, size: int) -> None:
        """Fire-and-forget a datagram toward ``dst``."""
        self.segment.send(Datagram(src=self.host, dst=dst, payload=payload, size=size))

    def deliver(self, datagram: Datagram) -> bool:
        """Called by the segment; False means the socket buffer was full."""
        return self.inbox.try_put(datagram)

    def recv(self) -> Event:
        """Wait for the next datagram."""
        return self.inbox.get()
