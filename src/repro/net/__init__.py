"""Network substrate: shared segments, datagrams, UDP endpoints."""

from repro.net.packet import Datagram
from repro.net.segment import Segment
from repro.net.spec import ETHERNET, FDDI, NetSpec
from repro.net.udp import SocketBuffer, UdpEndpoint

__all__ = [
    "NetSpec",
    "ETHERNET",
    "FDDI",
    "Datagram",
    "Segment",
    "SocketBuffer",
    "UdpEndpoint",
]
