"""A shared network segment (private Ethernet or FDDI ring).

Both technologies in the paper are shared media: every frame from every
host serializes on the one channel.  The segment models this with a single
transmission resource acquired *per frame*, so a long request train and the
reply traffic interleave frame-by-frame exactly as in the §5 case study.

Delivery places the reassembled datagram into the destination endpoint's
socket buffer; if that buffer is full the datagram is dropped, which is how
an overloaded server sheds load back onto client retransmission (§4.2).

The segment doubles as the fault-injection surface for the ``repro.faults``
subsystem: loss rate is adjustable mid-run, hosts can be partitioned off
(their traffic silently dropped in both directions, as with a dead
transceiver), and delivered datagrams can be probabilistically duplicated
or delayed out of order — all drawing from the segment's own seeded RNG so
faulty runs stay deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, Set

from repro.net.packet import Datagram
from repro.net.spec import NetSpec
from repro.net.udp import UdpEndpoint
from repro.obs import PHASE_WIRE, collector_for, registry_for
from repro.sim import Environment, Resource, Store

__all__ = ["Segment"]


class Segment:
    """One shared-medium network segment with attached hosts."""

    def __init__(
        self,
        env: Environment,
        spec: NetSpec,
        name: str = "",
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._medium = Resource(env, capacity=1)
        self._endpoints: Dict[str, UdpEndpoint] = {}
        self._tx_queues: Dict[str, object] = {}
        #: Hosts currently cut off the segment (fault injection).
        self._partitioned: Set[str] = set()
        #: Probability a delivered datagram is delivered twice.
        self.duplicate_rate = 0.0
        #: Probability a delivered datagram is delayed by ``reorder_delay``
        #: (letting later traffic overtake it).
        self.reorder_rate = 0.0
        self.reorder_delay = 0.0
        self.obs = collector_for(env)
        metrics = registry_for(env)
        self.utilization = metrics.utilization(f"{self.name}.wire")
        self.delivered = metrics.counter(f"{self.name}.delivered")
        self.dropped = metrics.counter(f"{self.name}.dropped")
        self.lost = metrics.counter(f"{self.name}.lost")
        self.bytes_moved = metrics.counter(f"{self.name}.bytes")
        self.partition_drops = metrics.counter(f"{self.name}.partition_drops")
        self.duplicated = metrics.counter(f"{self.name}.duplicated")
        self.reordered = metrics.counter(f"{self.name}.reordered")

    def attach(self, host: str, buffer_bytes: int = 256 * 1024) -> UdpEndpoint:
        """Create an endpoint for ``host`` with a bounded socket buffer."""
        if host in self._endpoints:
            raise ValueError(f"host {host!r} already attached to {self.name}")
        endpoint = UdpEndpoint(self.env, host, self, buffer_bytes)
        self._endpoints[host] = endpoint
        self._tx_queues[host] = Store(self.env)
        self.env.process(self._host_transmitter(host), name=f"nic:{host}")
        return endpoint

    def endpoint(self, host: str) -> UdpEndpoint:
        return self._endpoints[host]

    def has_host(self, host: str) -> bool:
        """Whether ``host`` is already attached to this segment."""
        return host in self._endpoints

    def unique_host(self, prefix: str) -> str:
        """First unattached name in the ``{prefix}-{n}`` sequence.

        Lets testbeds and clusters auto-generate client host names that
        never collide with hosts already attached (including ones callers
        attached explicitly under a matching name).
        """
        index = 0
        while f"{prefix}-{index}" in self._endpoints:
            index += 1
        return f"{prefix}-{index}"

    # -- fault-injection controls (driven by repro.faults) ---------------------

    def set_loss_rate(self, rate: float) -> None:
        """Change the per-frame loss probability mid-run."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.loss_rate = rate

    def partition(self, host: str) -> None:
        """Cut ``host`` off the segment: its datagrams (both directions)
        finish their wire time but are never delivered."""
        if host not in self._endpoints:
            raise ValueError(f"unknown host {host!r}")
        self._partitioned.add(host)

    def heal(self, host: str) -> None:
        """Reconnect a partitioned host."""
        self._partitioned.discard(host)

    def is_partitioned(self, host: str) -> bool:
        return host in self._partitioned

    def set_duplicate_rate(self, rate: float) -> None:
        """Probability that a delivered datagram arrives twice."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"duplicate rate must be in [0, 1), got {rate}")
        self.duplicate_rate = rate

    def set_reorder(self, rate: float, extra_delay: float) -> None:
        """Delay a ``rate`` fraction of datagrams by ``extra_delay`` seconds,
        letting traffic sent after them arrive first."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"reorder rate must be in [0, 1), got {rate}")
        if extra_delay < 0:
            raise ValueError(f"extra delay must be >= 0, got {extra_delay}")
        self.reorder_rate = rate
        self.reorder_delay = extra_delay

    def send(self, datagram: Datagram) -> None:
        """Queue ``datagram`` on its source host's NIC; returns immediately."""
        if datagram.dst not in self._endpoints:
            raise ValueError(f"unknown destination host {datagram.dst!r}")
        if datagram.src not in self._tx_queues:
            raise ValueError(f"unknown source host {datagram.src!r}")
        datagram.fragments = self.spec.frames_for(datagram.size)
        self._tx_queues[datagram.src].put(datagram)

    def _host_transmitter(self, host: str):
        """One host's NIC: transmits its queued datagrams strictly in order,
        contending for the shared medium frame by frame."""
        queue = self._tx_queues[host]
        while True:
            datagram = yield queue.get()
            lost = yield from self._transmit_frames(datagram)
            # Propagation/delivery happens off the NIC's critical path.
            self._schedule_delivery(datagram, lost)

    def _transmit_frames(self, datagram: Datagram):
        frames = datagram.fragments
        frame_payload = -(-datagram.size // frames)  # even-ish split
        lost = False
        trace = getattr(datagram.payload, "trace", None) if self.obs.enabled else None
        for index in range(frames):
            payload = min(frame_payload, datagram.size - index * frame_payload)
            wire_bytes = payload + self.spec.frame_overhead
            with self._medium.request() as grant:
                yield grant
                self.utilization.begin()
                held_at = self.env.now
                yield self.env.timeout(wire_bytes * 8.0 / self.spec.bandwidth_bps)
                self.utilization.end()
                if trace is not None:
                    self.obs.emit(
                        PHASE_WIRE,
                        self.name,
                        held_at,
                        self.env.now,
                        trace_id=trace.trace_id,
                        frame=index,
                        frames=frames,
                        bytes=wire_bytes,
                        src=datagram.src,
                    )
            self.bytes_moved.add(wire_bytes)
            if self.loss_rate and self._rng.random() < self.loss_rate:
                lost = True  # keep transmitting; the medium time is spent
        return lost

    def _schedule_delivery(self, datagram: Datagram, lost: bool) -> None:
        """Arrange for ``datagram`` to arrive ``latency`` from now.

        Delivery is a plain callback on a timeout — not a process — so the
        per-datagram cost is one heap event instead of a full process
        lifecycle (spawn, initialize, resume, finish).
        """
        # Fault knobs draw from the RNG only while nonzero, so fault-free
        # runs consume the identical random stream they always did.
        extra_delay = 0.0
        duplicated = False
        if not lost:
            if self.reorder_rate and self._rng.random() < self.reorder_rate:
                extra_delay = self.reorder_delay
                self.reordered.add(1)
            if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
                duplicated = True
        timer = self.env.timeout(self.spec.latency + extra_delay)
        if lost:
            timer.callbacks.append(lambda _ev: self.lost.add(1))
        elif duplicated:
            timer.callbacks.append(
                lambda _ev, d=datagram: self._arrive_with_duplicate(d)
            )
        else:
            timer.callbacks.append(lambda _ev, d=datagram: self._arrive(d))

    def _arrive_with_duplicate(self, datagram: Datagram) -> None:
        self._arrive(datagram)
        self.duplicated.add(1)
        timer = self.env.timeout(self.spec.latency)
        timer.callbacks.append(
            lambda _ev, d=self._clone(datagram): self._arrive(d)
        )

    def _arrive(self, datagram: Datagram) -> None:
        if datagram.src in self._partitioned or datagram.dst in self._partitioned:
            self.partition_drops.add(1)
            return
        target = self._endpoints[datagram.dst]
        if not target.deliver(datagram):
            self.dropped.add(1)
        else:
            self.delivered.add(1)

    @staticmethod
    def _clone(datagram: Datagram) -> Datagram:
        """A fresh Datagram carrying the same payload (the duplicate gets
        its own arrival bookkeeping in the destination socket buffer)."""
        copy = Datagram(
            src=datagram.src,
            dst=datagram.dst,
            payload=datagram.payload,
            size=datagram.size,
        )
        copy.fragments = datagram.fragments
        return copy
