"""Background scrub and self-healing repair (repro.integrity).

The :class:`Scrubber` is a sim process owned by one shard's primary.  It
walks every block referenced by the durable image at a bounded rate
(``bandwidth`` bytes of scrub reads per second, each charged to the real
storage device so scrub competes with foreground I/O), verifies each
block's checksum and the medium under it, and heals what it finds:

* **Replicated shard (K≥1)** — fetch a verified copy of the afflicted
  ``(ino, fblock)`` from the freshest surviving replica-group peer over
  the replica RPC plane (``PROC_SCRUB_FETCH``; the fetch is addressed by
  file coordinates, not raw block address, because each member's
  allocator lays files out independently).  The fetched bytes must match
  the locally recorded digest — a stale peer cannot "repair" new data
  with old.  A successful repair rewrites the block (a real device
  write), recommits it under its digest, and heals any latent range.
* **Standalone shard (K=0)** — nothing to fetch from: the block is
  quarantined, reads of it surface EIO, and the quarantine record is the
  report (never silence).

Convergence is observable: :meth:`request_quiesce` returns an event that
fires at the end of the first *clean* pass (zero new defects) started
after the request — with K≥1 that means every latent/corrupt block was
repaired; with K=0 that every one is quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fs.inode import NDIRECT
from repro.integrity.checksum import block_digest
from repro.integrity.errors import CorruptBlockError
from repro.nfs.protocol import PROC_SCRUB_FETCH
from repro.obs import PHASE_REPAIR, PHASE_SCRUB, collector_for
from repro.rpc.client import RpcTimeoutError
from repro.rpc.messages import CLASS_MEDIUM, RPC_HEADER_BYTES
from repro.sim import Event

__all__ = [
    "ScrubFetchArgs",
    "Scrubber",
    "QuarantineRecord",
    "RepairRecord",
    "install_scrub_fetch",
]


@dataclass(frozen=True)
class ScrubFetchArgs:
    """Ask a peer for one verified block of a file, by file coordinates."""

    ino: int
    fblock: int
    nbytes: int


@dataclass(frozen=True)
class RepairRecord:
    """One healed block."""

    addr: int
    ino: int
    fblock: int
    kind: str
    detected_at: float
    repaired_at: float
    nbytes: int
    peer: str

    def to_dict(self) -> dict:
        return {
            "addr": self.addr,
            "ino": self.ino,
            "fblock": self.fblock,
            "kind": self.kind,
            "detected_at": round(self.detected_at, 9),
            "repaired_at": round(self.repaired_at, 9),
            "nbytes": self.nbytes,
            "peer": self.peer,
        }


@dataclass(frozen=True)
class QuarantineRecord:
    """One block surfaced as unreadable (EIO) with no repair source."""

    addr: int
    ino: int
    fblock: int
    kind: str
    at: float

    def to_dict(self) -> dict:
        return {
            "addr": self.addr,
            "ino": self.ino,
            "fblock": self.fblock,
            "kind": self.kind,
            "at": round(self.at, 9),
        }


def install_scrub_fetch(server) -> None:
    """Register the peer side of scrub repair on ``server``.

    The handler is an ordinary server action routine: it resolves the
    file coordinates against the member's *own* durable image, charges a
    real disk read, refuses (EIO) if its copy is latent/corrupt/missing,
    and otherwise returns the verified bytes (reply size includes them,
    so repair traffic is modeled on the wire).
    """
    from repro.fs.ufs import FsError

    def handle_scrub_fetch(args: ScrubFetchArgs):
        ufs = server.ufs
        durable = ufs.cache.durable
        snapshot = durable.inodes.get(args.ino)
        if snapshot is None:
            raise FsError("EIO", f"scrub_fetch: ino {args.ino} not committed here")
        if args.fblock < NDIRECT:
            addr = snapshot.direct[args.fblock]
        else:
            addr = durable.indirects.get(args.ino, {}).get(args.fblock)
        if addr is None:
            raise FsError(
                "EIO", f"scrub_fetch: ino {args.ino} block {args.fblock} unmapped"
            )
        yield ufs.storage.submit(addr, ufs.block_size, is_write=False, kind="scrub")
        if ufs.storage.latent_overlap(addr, ufs.block_size):
            raise FsError("EIO", f"scrub_fetch: latent sector at addr={addr}")
        try:
            durable.verify_block(addr)
        except CorruptBlockError as exc:
            raise FsError("EIO", f"scrub_fetch: {exc}") from exc
        data = durable.blocks.get(addr)
        if data is None:
            raise FsError("EIO", f"scrub_fetch: no durable content at addr={addr}")
        return data, RPC_HEADER_BYTES + len(data)

    server._actions[PROC_SCRUB_FETCH] = handle_scrub_fetch


class Scrubber:
    """Background integrity scrub of one shard's durable image."""

    def __init__(
        self,
        server,
        storage,
        group=None,
        bandwidth: float = 4 << 20,
        interval: float = 0.05,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"scrub bandwidth must be positive, got {bandwidth}")
        if interval <= 0:
            raise ValueError(f"scrub interval must be positive, got {interval}")
        self.server = server
        self.storage = storage
        self.group = group
        self.env = server.env
        self.block_size = server.ufs.block_size
        self.bandwidth = bandwidth
        self.interval = interval
        self.obs = collector_for(self.env)
        # -- outcome accounting ------------------------------------------
        self.passes = 0
        self.blocks_scanned = 0
        #: addr -> (detection time, defect kind), first detection wins.
        self.detections: Dict[int, Tuple[float, str]] = {}
        self.repairs: List[RepairRecord] = []
        self.quarantines: List[QuarantineRecord] = []
        self.repair_bytes = 0
        self._unrepairable: Set[int] = set()
        self._stopped = False
        self._process = None
        self._pending_quiesce: List[Event] = []
        self._armed_quiesce: List[Event] = []

    @property
    def ufs(self):
        # Resolved through the server every time: crash/failover paths may
        # swap filesystem state under a long-lived scrubber.
        return self.server.ufs

    # -- control ---------------------------------------------------------------

    def start(self) -> "Scrubber":
        if self._process is None:
            self._process = self.env.process(
                self._run(), name=f"scrub:{self.server.host}"
            )
        return self

    def stop(self) -> None:
        self._stopped = True

    def request_quiesce(self) -> Event:
        """Event firing at the end of the first clean pass (zero new
        defects) that *starts* after this call."""
        done = Event(self.env)
        self._pending_quiesce.append(done)
        return done

    @property
    def mean_time_to_repair(self) -> Optional[float]:
        if not self.repairs:
            return None
        return sum(r.repaired_at - r.detected_at for r in self.repairs) / len(
            self.repairs
        )

    # -- the scrub loop ---------------------------------------------------------

    def _run(self):
        while not self._stopped:
            self._armed_quiesce.extend(self._pending_quiesce)
            self._pending_quiesce.clear()
            new_defects = yield from self._pass()
            if new_defects == 0:
                for waiter in self._armed_quiesce:
                    if not waiter.triggered:
                        waiter.succeed()
                self._armed_quiesce.clear()
            if self._stopped:
                return
            yield self.env.timeout(self.interval)

    def _referenced(self) -> List[Tuple[int, int, int]]:
        """(addr, ino, fblock) for every block inside a committed size."""
        durable = self.ufs.cache.durable
        block_size = self.block_size
        refs: List[Tuple[int, int, int]] = []
        for ino, snapshot in durable.inodes.items():
            for fblock, addr in enumerate(snapshot.direct):
                if addr is not None and fblock * block_size < snapshot.size:
                    refs.append((addr, ino, fblock))
            mapping = durable.indirects.get(ino)
            if mapping:
                for fblock, addr in mapping.items():
                    if addr is not None and fblock * block_size < snapshot.size:
                        refs.append((addr, ino, fblock))
        refs.sort()
        return refs

    def _pass(self):
        started = self.env.now
        new_defects = 0
        scanned = 0
        durable = self.ufs.cache.durable
        for addr, ino, fblock in self._referenced():
            if self._stopped:
                break
            # Pace the walk (the bandwidth bound), then charge the read to
            # the real device so scrub competes with foreground traffic.
            yield self.env.timeout(self.block_size / self.bandwidth)
            yield self.storage.submit(
                addr, self.block_size, is_write=False, kind="scrub"
            )
            scanned += 1
            if addr in self._unrepairable:
                continue  # already surfaced; nothing more to do without peers
            defect = None
            if self.storage.latent_overlap(addr, self.block_size):
                defect = "latent"
            elif addr in durable.quarantined:
                # A read path hit this first; the scrubber owns the repair.
                defect = durable.quarantined[addr]
            else:
                try:
                    durable.verify_block(addr)
                except CorruptBlockError as exc:
                    defect = exc.reason
            if defect is None:
                continue
            new_defects += 1
            detected_at = self.env.now
            self.detections.setdefault(addr, (detected_at, defect))
            yield from self._repair(addr, ino, fblock, defect, detected_at)
        self.blocks_scanned += scanned
        self.passes += 1
        if self.obs.enabled:
            self.obs.emit(
                PHASE_SCRUB,
                self.server.host,
                started,
                self.env.now,
                blocks=scanned,
                defects=new_defects,
            )
        return new_defects

    # -- repair ----------------------------------------------------------------

    def _peer_order(self) -> List[str]:
        """Surviving group peers, freshest (highest applied seq) first."""
        if self.group is None:
            return []
        peers = [
            member
            for member in self.group.surviving()
            if member is not self.server
        ]
        peers.sort(
            key=lambda member: (
                -(member.replicator.applied_seq if member.replicator else 0),
                member.host,
            )
        )
        return [member.host for member in peers]

    def _repair(self, addr: int, ino: int, fblock: int, kind: str, detected_at: float):
        durable = self.ufs.cache.durable
        want = durable.checksums.get(addr)
        rpc = self.server.replicator.rpc if self.server.replicator else None
        if rpc is not None:
            for host in self._peer_order():
                try:
                    reply = yield from rpc.call(
                        PROC_SCRUB_FETCH,
                        ScrubFetchArgs(ino, fblock, self.block_size),
                        size=RPC_HEADER_BYTES + 16,
                        reply_size=RPC_HEADER_BYTES + self.block_size,
                        weight=CLASS_MEDIUM,
                        server=host,
                        max_attempts=5,
                    )
                except RpcTimeoutError:
                    continue  # dead/unreachable peer must not wedge the scrub
                if not reply.ok:
                    continue
                data = reply.result
                if want is not None and block_digest(data) != want:
                    # A stale peer cannot repair newer data with older.
                    continue
                yield self.storage.submit(
                    addr, self.block_size, is_write=True, kind="repair"
                )
                durable.commit_block(addr, data)
                self.storage.heal_latent(addr, self.block_size)
                repaired_at = self.env.now
                self.repairs.append(
                    RepairRecord(
                        addr=addr,
                        ino=ino,
                        fblock=fblock,
                        kind=kind,
                        detected_at=detected_at,
                        repaired_at=repaired_at,
                        nbytes=len(data),
                        peer=host,
                    )
                )
                self.repair_bytes += len(data)
                if self.obs.enabled:
                    self.obs.emit(
                        PHASE_REPAIR,
                        self.server.host,
                        detected_at,
                        repaired_at,
                        addr=addr,
                        peer=host,
                        kind=kind,
                    )
                return True
        # No peer could serve a verified copy: surface, never silence.
        durable.quarantine(addr, kind)
        self._unrepairable.add(addr)
        self.quarantines.append(
            QuarantineRecord(
                addr=addr, ino=ino, fblock=fblock, kind=kind, at=self.env.now
            )
        )
        return False
