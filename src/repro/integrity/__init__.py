"""repro.integrity — end-to-end data integrity for the simulated server.

Per-block checksums attach where bytes become durable (the
:class:`~repro.fs.buffer_cache.DurableImage` commit points) and are
verified on every path that turns durable bytes back into served bytes —
buffer-cache miss, fsck, replica resync, scrub.  A mismatch is never
silent: it raises :class:`~repro.integrity.errors.CorruptBlockError`,
which the NFS read path surfaces as EIO and quarantines.

Media faults that *create* corruption (bit rot, latent sector errors,
torn writes, NVRAM battery degrade) live in ``repro.faults.events``; the
:class:`~repro.integrity.scrub.Scrubber` closes the loop by detecting
them in the background and self-healing from replica peers — or, with
nobody to fetch from, surfacing them loudly.

The checksum/error primitives import eagerly (they are leaves — the
buffer cache depends on them); the scrubber and experiment re-exports
resolve lazily so importing :mod:`repro.fs` never cycles back through
the cluster stack.
"""

from repro.integrity.checksum import block_digest
from repro.integrity.errors import CorruptBlockError

__all__ = [
    "block_digest",
    "CorruptBlockError",
    "Scrubber",
    "ScrubFetchArgs",
    "QuarantineRecord",
    "RepairRecord",
    "install_scrub_fetch",
    "ScrubConfig",
    "ScrubArm",
    "ScrubRunResult",
    "SCRUB_SCHEMA",
    "run_scrub",
]

_LAZY = {
    "Scrubber": "repro.integrity.scrub",
    "ScrubFetchArgs": "repro.integrity.scrub",
    "QuarantineRecord": "repro.integrity.scrub",
    "RepairRecord": "repro.integrity.scrub",
    "install_scrub_fetch": "repro.integrity.scrub",
    "ScrubConfig": "repro.integrity.experiment",
    "ScrubArm": "repro.integrity.experiment",
    "ScrubRunResult": "repro.integrity.experiment",
    "SCRUB_SCHEMA": "repro.integrity.experiment",
    "run_scrub": "repro.integrity.experiment",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
