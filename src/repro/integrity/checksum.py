"""Block digests for end-to-end integrity.

One function, one invariant: ``block_digest(data)`` is the digest the
write path stores next to every durable block, and the digest every
read path recomputes before trusting the bytes.  CRC32 is plenty for a
simulator — the point is *detection plumbing*, not cryptographic
strength — and it is pure stdlib, byte-deterministic, and cheap enough
that computing it at commit time cannot perturb simulated timings
(checksums are bookkeeping, never sim events).
"""

from __future__ import annotations

import zlib

__all__ = ["block_digest"]


def block_digest(data: bytes) -> int:
    """The integrity digest of one durable block's bytes."""
    return zlib.crc32(data) & 0xFFFFFFFF
