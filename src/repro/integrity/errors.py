"""Typed integrity failures.

:class:`CorruptBlockError` deliberately does **not** subclass
``repro.fs.ufs.FsError`` — the buffer cache sits *below* UFS and must
not import it (the dependency points the other way).  UFS catches this
error at its storage boundaries and converts it to ``FsError("EIO")``
so servers and clients see a plain I/O error, never silent garbage.
"""

from __future__ import annotations

__all__ = ["CorruptBlockError"]


class CorruptBlockError(Exception):
    """A durable block failed checksum verification (or is quarantined).

    ``addr`` is the block address; ``reason`` is a short machine-usable
    tag (``"checksum"``, ``"missing"``, ``"quarantined"``).
    """

    def __init__(self, addr: int, reason: str = "checksum", detail: str = ""):
        self.addr = addr
        self.reason = reason
        self.detail = detail
        text = f"corrupt block at addr={addr} ({reason})"
        if detail:
            text += f": {detail}"
        super().__init__(text)
