"""The scrub experiment: does end-to-end integrity actually hold?

``repro scrub`` runs a seeded single-shard write workload while a media
fault storm lands on the primary — bit rot, latent sector errors, an
armed torn-write tear, and an armed NVRAM battery degrade, all cashed in
by a mid-run crash — with a background :class:`~repro.integrity.scrub.
Scrubber` walking the durable image.  The sweep crosses corruption rate
× scrub bandwidth × replication factor K and each arm reports

* detection: how many injected defects the scrub (or a read) caught,
  and the mean latency from injection to detection;
* repair: blocks healed from replica peers, mean time-to-repair, and
  the wire bytes the repairs cost;
* surfacing: quarantined blocks and EIO read-backs (the K=0 story —
  with nobody to fetch from, corruption must be *loud*, never silent);
* the integrity contract itself: zero acked READs returning bytes that
  differ from the acked write image, in **every** arm.

Everything is seeded; ``--json`` output is byte-identical across reruns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.experiment import (
    CLUSTER_THINK_TIME,
    _client_files,
    _client_workload,
)
from repro.cluster.fleet import Cluster, ClusterConfig
from repro.cluster.oracle import ClusterOracle
from repro.faults.controller import FaultController
from repro.faults.events import (
    AtTime,
    BitRot,
    FaultPlan,
    LatentSectorError,
    NvramDegrade,
    ServerCrash,
    TornWrite,
)
from repro.nfs.protocol import NfsError
from repro.payload import PAYLOAD_FULL
from repro.integrity.scrub import Scrubber, install_scrub_fetch
from repro.sim import AllOf

__all__ = ["ScrubConfig", "ScrubArm", "ScrubRunResult", "run_scrub"]

SCRUB_SCHEMA = "repro.scrub/1"

#: The storm timeline, placed mid-workload so the media faults land on
#: *acked* durable blocks (striking too early only corrupts in-flight
#: data that clients rewrite after the crash — nothing would be at
#: stake).  Rot and latent errors hit standing data first; the torn
#: write and NVRAM degrade arm just before the crash that cashes them.
BIT_ROT_AT = 0.30
LATENT_AT = 0.35
TORN_ARM_AT = 0.38
DEGRADE_ARM_AT = 0.385
CRASH_AT = 0.40


@dataclass
class ScrubConfig:
    """One integrity sweep: workload shape plus the three swept axes."""

    seed: int = 0
    clients: int = 3
    files_per_client: int = 2
    file_kb: int = 32
    think_time: float = CLUSTER_THINK_TIME
    #: Fraction of the workload's durable blocks afflicted per media
    #: fault (bit rot and latent each get ``rate * blocks`` victims).
    corruption_rates: Sequence[float] = (0.25,)
    #: Scrub read bandwidth in bytes/second.
    scrub_bandwidths: Sequence[float] = (2 << 20, 8 << 20)
    #: Replication factors to sweep.
    replica_counts: Sequence[int] = (0, 1)
    #: Idle gap between scrub passes (simulated seconds).
    scrub_interval: float = 0.005
    presto_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        for rate in self.corruption_rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        for bandwidth in self.scrub_bandwidths:
            if bandwidth <= 0:
                raise ValueError(f"scrub bandwidth must be positive, got {bandwidth}")
        for replicas in self.replica_counts:
            if replicas < 0:
                raise ValueError(f"replicas must be >= 0, got {replicas}")


class _ShardTarget:
    """Adapter giving :class:`FaultController` its testbed-shaped view of
    one cluster shard (env/segment/server/disks/storage)."""

    def __init__(self, cluster: Cluster, shard: int = 0) -> None:
        self.env = cluster.env
        self.segment = cluster.segments[0]
        self.server = cluster.servers[shard]
        self.disks = cluster.disks[shard]
        self.storage = self.server.storage


def _storm(rate: float, victims: int, seed: int) -> FaultPlan:
    """The per-arm fault plan: same shape in every arm, seeded victims."""
    return FaultPlan(
        name=f"scrub-storm/r{rate}/s{seed}",
        events=(
            BitRot(trigger=AtTime(BIT_ROT_AT), count=victims, seed=seed),
            LatentSectorError(trigger=AtTime(LATENT_AT), count=victims, seed=seed + 1),
            TornWrite(trigger=AtTime(TORN_ARM_AT), seed=seed),
            NvramDegrade(
                trigger=AtTime(DEGRADE_ARM_AT),
                fraction=min(1.0, rate * 2.0),
                seed=seed,
            ),
            ServerCrash(trigger=AtTime(CRASH_AT), reboot_delay=0.0),
        ),
    )


@dataclass
class ScrubArm:
    """One (corruption rate, scrub bandwidth, K) cell's measured run."""

    corruption_rate: float
    scrub_bandwidth: float
    replicas: int
    elapsed: float
    acked_writes: int
    injected_defects: int
    scrub_passes: int
    blocks_scanned: int
    detections: int
    mean_detection_latency_ms: Optional[float]
    repairs: int
    mean_time_to_repair_ms: Optional[float]
    repair_bytes: int
    quarantines: int
    eio_reads: int
    read_acks: int
    silent_read_corruptions: int
    converged: bool
    #: Violations recorded mid-run (crash-time checks seeing corruption
    #: the scrub had not healed yet) — *detections*, not end-state debt.
    crash_time_violations: int
    #: Violations still standing at the final post-repair audit.
    durability_violations: int
    faults: List[dict] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """The arm-level integrity contract.

        Silence is never tolerated.  With peers (K>=1) everything must
        heal by the final audit: no quarantines, no EIO, no residual
        violations (crash-time reports are fine — that is detection
        working).  Standalone (K=0) the losses are real but must all be
        *surfaced* — quarantined and EIO on read-back — so residual
        durability violations are the detected losses themselves, not a
        contract breach.
        """
        if self.silent_read_corruptions or not self.converged:
            return False
        if self.replicas > 0:
            return (
                self.durability_violations == 0
                and self.quarantines == 0
                and self.eio_reads == 0
            )
        return True

    def to_dict(self) -> dict:
        return {
            "corruption_rate": self.corruption_rate,
            "scrub_bandwidth": self.scrub_bandwidth,
            "replicas": self.replicas,
            "elapsed": round(self.elapsed, 9),
            "acked_writes": self.acked_writes,
            "injected_defects": self.injected_defects,
            "scrub_passes": self.scrub_passes,
            "blocks_scanned": self.blocks_scanned,
            "detections": self.detections,
            "mean_detection_latency_ms": self.mean_detection_latency_ms,
            "repairs": self.repairs,
            "mean_time_to_repair_ms": self.mean_time_to_repair_ms,
            "repair_bytes": self.repair_bytes,
            "quarantines": self.quarantines,
            "eio_reads": self.eio_reads,
            "read_acks": self.read_acks,
            "silent_read_corruptions": self.silent_read_corruptions,
            "converged": self.converged,
            "crash_time_violations": self.crash_time_violations,
            "durability_violations": self.durability_violations,
            "clean": self.clean,
            "faults": self.faults,
            "violations": list(self.violations),
        }


def _read_back(env, client, names: List[str], nbytes: int, counts: dict):
    """Sequentially read every file back, counting EIO chunks.

    Acked chunks flow through ``on_read_acked`` into the oracle's silent-
    corruption check; EIO chunks are the *detected* (surfaced) failures.
    """
    chunk = 8192
    for name in names:
        open_file = yield from client.open(name)
        offset = 0
        while offset < nbytes:
            take = min(chunk, nbytes - offset)
            try:
                yield from client.read(open_file, offset, take)
            except NfsError as exc:
                if exc.code != "EIO":
                    raise
                counts["eio"] += 1
            offset += take


def run_scrub_arm(
    config: ScrubConfig, rate: float, bandwidth: float, replicas: int
) -> ScrubArm:
    """One cell: workload + storm + scrub + read-back audit."""
    cluster_config = ClusterConfig(
        servers=1,
        replicas=replicas,
        quorum=1,
        presto_bytes=config.presto_bytes,
        seed=config.seed,
    )
    cluster = Cluster(cluster_config)
    env = cluster.env
    oracle = ClusterOracle(cluster)
    primary = cluster.servers[0]
    group = cluster.groups[0]
    for member in group.members:
        install_scrub_fetch(member)
    scrubber = Scrubber(
        primary,
        primary.storage,
        group=group if replicas > 0 else None,
        bandwidth=bandwidth,
        interval=config.scrub_interval,
    ).start()

    nbytes = config.file_kb * 1024
    block_size = primary.ufs.block_size
    total_blocks = max(
        1, config.clients * config.files_per_client * nbytes // block_size
    )
    victims = max(1, int(round(rate * total_blocks)))
    controller = FaultController(
        _ShardTarget(cluster), _storm(rate, victims, config.seed), oracle=oracle
    ).start()

    writers = []
    client_names: List[tuple] = []
    for _ in range(config.clients):
        client = cluster.add_client()
        oracle.attach(client)
        host = client.rpc.endpoint.host
        names = _client_files(host, config.files_per_client)
        client_names.append((client, names))
        writers.append(
            env.process(
                _client_workload(
                    env, client, names, nbytes, config.think_time, PAYLOAD_FULL
                ),
                name=f"workload:{host}",
            )
        )
    env.run(until=AllOf(env, writers))
    elapsed = max(proc.value for proc in writers)

    # Let the scrub converge: the event fires at the end of the first
    # pass (started after this request) that finds zero new defects.
    quiesced = scrubber.request_quiesce()
    env.run(until=quiesced)
    scrubber.stop()

    # Read-back audit: every acked byte, through the real READ path.
    counts = {"eio": 0}
    readers = [
        env.process(
            _read_back(env, client, names, nbytes, counts),
            name=f"readback:{client.rpc.endpoint.host}",
        )
        for client, names in client_names
    ]
    env.run(until=AllOf(env, readers))
    env.run()  # drain replication sessions, NVRAM destage, watchdogs
    crash_time = len(oracle.violations)
    final_violations = oracle.check("final")
    if replicas > 0:
        final_violations.extend(oracle.check_divergence("quiesce"))

    injected = _injected_defects(controller.log)
    latencies = [
        scrubber.detections[addr][0] - injected_at
        for addr, injected_at in injected.items()
        if addr in scrubber.detections
    ]
    return ScrubArm(
        corruption_rate=rate,
        scrub_bandwidth=bandwidth,
        replicas=replicas,
        elapsed=elapsed,
        acked_writes=oracle.acked_writes,
        injected_defects=len(injected),
        scrub_passes=scrubber.passes,
        blocks_scanned=scrubber.blocks_scanned,
        detections=len(scrubber.detections),
        mean_detection_latency_ms=(
            round(sum(latencies) / len(latencies) * 1000.0, 4)
            if latencies
            else None
        ),
        repairs=len(scrubber.repairs),
        mean_time_to_repair_ms=(
            round(scrubber.mean_time_to_repair * 1000.0, 4)
            if scrubber.mean_time_to_repair is not None
            else None
        ),
        repair_bytes=scrubber.repair_bytes,
        quarantines=len(scrubber.quarantines),
        eio_reads=counts["eio"],
        read_acks=sum(o.read_acks for o in oracle._per_shard.values()),
        silent_read_corruptions=len(oracle.read_violations),
        converged=quiesced.triggered,
        crash_time_violations=crash_time,
        durability_violations=len(final_violations),
        faults=controller.log,
        violations=final_violations,
    )


def _injected_defects(log: List[dict]) -> dict:
    """addr -> injection time, for every media-fault victim the storm
    actually afflicted (torn writes tear anonymously; they show up in the
    detection counts, not here)."""
    injected: dict = {}
    for record in log:
        for key in ("victims", "nvram_lost_blocks"):
            for addr in record.get(key, ()):
                injected.setdefault(addr, record["start"])
    return injected


@dataclass
class ScrubRunResult:
    """The full sweep: corruption rate × scrub bandwidth × K."""

    config: ScrubConfig
    arms: List[ScrubArm]

    @property
    def clean(self) -> bool:
        return all(arm.clean for arm in self.arms)

    def to_dict(self) -> dict:
        return {
            "schema": SCRUB_SCHEMA,
            "seed": self.config.seed,
            "clients": self.config.clients,
            "files_per_client": self.config.files_per_client,
            "file_kb": self.config.file_kb,
            "corruption_rates": list(self.config.corruption_rates),
            "scrub_bandwidths": [float(b) for b in self.config.scrub_bandwidths],
            "replica_counts": list(self.config.replica_counts),
            "arms": [arm.to_dict() for arm in self.arms],
            "clean": self.clean,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def run_scrub(config: Optional[ScrubConfig] = None, progress=None) -> ScrubRunResult:
    """Sweep the integrity axes; each arm is a fresh, seeded cluster."""
    config = config or ScrubConfig()
    arms: List[ScrubArm] = []
    for rate in config.corruption_rates:
        for bandwidth in config.scrub_bandwidths:
            for replicas in config.replica_counts:
                arm = run_scrub_arm(config, rate, float(bandwidth), replicas)
                arms.append(arm)
                if progress is not None:
                    progress(arm)
    return ScrubRunResult(config=config, arms=arms)
