"""Bucketed rate series: throughput over time.

The §5 case study is about *dynamics* — uni-directional traffic trains
alternating with reply bursts — which a single average hides.  A
:class:`RateSeries` buckets observations into fixed windows so experiments
can show (and tests can assert) the oscillation itself.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.sim import Environment

__all__ = ["RateSeries"]


class RateSeries:
    """Accumulates (time, amount) observations into fixed-width buckets."""

    def __init__(self, env: Environment, bucket_seconds: float = 0.01) -> None:
        if bucket_seconds <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_seconds}")
        self.env = env
        self.bucket_seconds = bucket_seconds
        self._start = env.now
        self._buckets: List[float] = []

    def observe(self, amount: float = 1.0) -> None:
        """Record ``amount`` at the current simulation time."""
        index = int((self.env.now - self._start) / self.bucket_seconds)
        if index < 0:
            raise ValueError("observation before the series start")
        while len(self._buckets) <= index:
            self._buckets.append(0.0)
        self._buckets[index] += amount

    # -- queries -----------------------------------------------------------

    def buckets(self) -> List[Tuple[float, float]]:
        """(bucket start time, rate per second) pairs."""
        return [
            (self._start + i * self.bucket_seconds, total / self.bucket_seconds)
            for i, total in enumerate(self._buckets)
        ]

    def rates(self) -> List[float]:
        return [total / self.bucket_seconds for total in self._buckets]

    def mean_rate(self) -> float:
        if not self._buckets:
            return 0.0
        return sum(self._buckets) / (len(self._buckets) * self.bucket_seconds)

    def burstiness(self) -> float:
        """Coefficient of variation of the per-bucket rates.

        ~0 for a smooth stream; large for on/off train-and-wait cycles.
        """
        rates = self.rates()
        if len(rates) < 2:
            return 0.0
        mean = sum(rates) / len(rates)
        if mean == 0:
            return 0.0
        variance = sum((r - mean) ** 2 for r in rates) / len(rates)
        return math.sqrt(variance) / mean

    def idle_fraction(self) -> float:
        """Fraction of buckets with no activity at all — the 'silent'
        halves of the §5 traffic cycles."""
        if not self._buckets:
            return 0.0
        return sum(1 for total in self._buckets if total == 0) / len(self._buckets)

    def sparkline(self, width: int = 60) -> str:
        """Compact text rendering (one char per resampled bucket)."""
        rates = self.rates()
        if not rates:
            return ""
        glyphs = " .:-=+*#%@"
        step = max(1, len(rates) // width)
        resampled = [
            max(rates[i : i + step]) for i in range(0, len(rates), step)
        ]
        peak = max(resampled) or 1.0
        return "".join(
            glyphs[min(len(glyphs) - 1, int(rate / peak * (len(glyphs) - 1)))]
            for rate in resampled
        )
