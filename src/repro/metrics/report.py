"""Plain-text rendering of results in the paper's table layout."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_paper_table", "format_comparison"]

_ROWS = [
    "client write speed (KB/sec.)",
    "server cpu util. (%)",
    "server disk (KB/sec)",
    "server disk (trans/sec)",
]


def format_paper_table(
    title: str,
    biods: Sequence[int],
    without: List[Dict[str, float]],
    with_gathering: List[Dict[str, float]],
) -> str:
    """Render measured cells in the layout of the paper's Tables 1-6."""
    width = max(7, max(len(str(b)) for b in biods) + 2)
    header = "# of Client Biods".ljust(30) + "".join(
        str(b).rjust(width) for b in biods
    )
    lines = [title, header]
    for section_name, cells in [
        ("Without Write Gathering", without),
        ("With Write Gathering", with_gathering),
    ]:
        lines.append(section_name)
        for row_name in _ROWS:
            values = "".join(
                str(round(cell[row_name])).rjust(width) for cell in cells
            )
            lines.append(row_name.ljust(30) + values)
    return "\n".join(lines)


def format_comparison(
    title: str,
    biods: Sequence[int],
    measured: Sequence[float],
    paper: Optional[Sequence[float]],
    unit: str = "KB/s",
) -> str:
    """Side-by-side measured-vs-paper line for EXPERIMENTS.md."""
    lines = [title]
    for index, b in enumerate(biods):
        measured_value = round(measured[index])
        if paper is not None:
            paper_value = paper[index]
            ratio = measured[index] / paper_value if paper_value else float("nan")
            lines.append(
                f"  biods={b:>2}: measured {measured_value:>6} {unit}, "
                f"paper {paper_value:>6} {unit} (x{ratio:0.2f})"
            )
        else:
            lines.append(f"  biods={b:>2}: measured {measured_value:>6} {unit}")
    return "\n".join(lines)
