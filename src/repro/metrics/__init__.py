"""Experiment metrics and paper-style report rendering."""

from repro.metrics.collect import FileCopyMetrics
from repro.metrics.report import format_comparison, format_paper_table
from repro.metrics.svg import LineChart
from repro.metrics.timeseries import RateSeries

__all__ = [
    "FileCopyMetrics",
    "format_paper_table",
    "format_comparison",
    "LineChart",
    "RateSeries",
]
