"""A small dependency-free SVG line-chart renderer.

Used by ``scripts/render_figures.py`` to produce Figure 2/3 style plots
(throughput vs response time) without matplotlib — the offline environment
has no plotting stack, and the charts are simple enough that hand-rolled
SVG is clearer than a dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["LineChart", "Series"]

_PALETTE = ["#1f6fb2", "#c4542d", "#3a8a4d", "#7b5aa6", "#a0893b"]


@dataclass
class Series:
    name: str
    points: List[Tuple[float, float]]
    color: str
    dashed: bool = False


def _nice_ticks(low: float, high: float, target: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if span / step <= target:
            break
    first = math.floor(low / step) * step
    ticks = []
    tick = first
    while True:
        ticks.append(round(tick, 10))
        if tick >= high - step * 0.01:
            break
        tick += step
    return ticks


class LineChart:
    """Accumulates series, renders one SVG string."""

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        width: int = 640,
        height: int = 420,
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.margin = dict(left=64, right=20, top=44, bottom=52)
        self.series: List[Series] = []

    def add_series(
        self,
        name: str,
        points: Sequence[Tuple[float, float]],
        color: Optional[str] = None,
        dashed: bool = False,
    ) -> None:
        if not points:
            raise ValueError(f"series {name!r} has no points")
        chosen = color or _PALETTE[len(self.series) % len(_PALETTE)]
        self.series.append(Series(name, sorted(points), chosen, dashed))

    # -- rendering ------------------------------------------------------------

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for series in self.series for x, _y in series.points]
        ys = [y for series in self.series for _x, y in series.points]
        return min(min(xs), 0.0), max(xs), min(min(ys), 0.0), max(ys)

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to render")
        x_low, x_high, y_low, y_high = self._bounds()
        x_ticks = _nice_ticks(x_low, x_high)
        y_ticks = _nice_ticks(y_low, y_high)
        x_low, x_high = min(x_ticks), max(x_ticks)
        y_low, y_high = min(y_ticks), max(y_ticks)
        plot_w = self.width - self.margin["left"] - self.margin["right"]
        plot_h = self.height - self.margin["top"] - self.margin["bottom"]

        def sx(x: float) -> float:
            return self.margin["left"] + (x - x_low) / (x_high - x_low) * plot_w

        def sy(y: float) -> float:
            return self.margin["top"] + plot_h - (y - y_low) / (y_high - y_low) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{self.title}</text>',
        ]
        # Gridlines + tick labels.
        for tick in x_ticks:
            x = sx(tick)
            parts.append(
                f'<line x1="{x:.1f}" y1="{self.margin["top"]}" x2="{x:.1f}" '
                f'y2="{self.margin["top"] + plot_h}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{self.margin["top"] + plot_h + 18}" '
                f'text-anchor="middle" font-size="11">{tick:g}</text>'
            )
        for tick in y_ticks:
            y = sy(tick)
            parts.append(
                f'<line x1="{self.margin["left"]}" y1="{y:.1f}" '
                f'x2="{self.margin["left"] + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{self.margin["left"] - 8}" y="{y + 4:.1f}" '
                f'text-anchor="end" font-size="11">{tick:g}</text>'
            )
        # Axes.
        parts.append(
            f'<rect x="{self.margin["left"]}" y="{self.margin["top"]}" '
            f'width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{self.margin["left"] + plot_w / 2}" y="{self.height - 12}" '
            f'text-anchor="middle" font-size="12">{self.x_label}</text>'
        )
        parts.append(
            f'<text x="16" y="{self.margin["top"] + plot_h / 2}" font-size="12" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{self.margin["top"] + plot_h / 2})">{self.y_label}</text>'
        )
        # Series.
        for series in self.series:
            coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in series.points)
            dash = ' stroke-dasharray="6 4"' if series.dashed else ""
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{series.color}" stroke-width="2"{dash}/>'
            )
            for x, y in series.points:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3.2" '
                    f'fill="{series.color}"/>'
                )
        # Legend.
        legend_y = self.margin["top"] + 8
        for index, series in enumerate(self.series):
            y = legend_y + index * 18
            x = self.margin["left"] + 12
            dash = ' stroke-dasharray="6 4"' if series.dashed else ""
            parts.append(
                f'<line x1="{x}" y1="{y}" x2="{x + 24}" y2="{y}" '
                f'stroke="{series.color}" stroke-width="2"{dash}/>'
            )
            parts.append(
                f'<text x="{x + 30}" y="{y + 4}" font-size="11">{series.name}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
