"""Metric records matching the paper's table rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FileCopyMetrics"]


@dataclass
class FileCopyMetrics:
    """One cell of Tables 1-6: a 10 MB file copy under one configuration."""

    label: str
    nbiods: int
    #: "client write speed (KB/sec.)"
    client_kb_per_sec: float
    #: "server cpu util. (%)"
    server_cpu_pct: float
    #: "server disk (KB/sec)" — aggregate over stripe members.
    disk_kb_per_sec: float
    #: "server disk (trans/sec)"
    disk_trans_per_sec: float
    elapsed_seconds: float
    #: Gathering observability (None for the standard server).
    mean_batch_size: Optional[float] = None
    gather_success_rate: Optional[float] = None
    procrastinations: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        """The four numbers the paper prints, rounded the same way."""
        return {
            "client write speed (KB/sec.)": round(self.client_kb_per_sec),
            "server cpu util. (%)": round(self.server_cpu_pct),
            "server disk (KB/sec)": round(self.disk_kb_per_sec),
            "server disk (trans/sec)": round(self.disk_trans_per_sec),
        }
