"""Metric records matching the paper's table rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FileCopyMetrics"]


@dataclass
class FileCopyMetrics:
    """One cell of Tables 1-6: a 10 MB file copy under one configuration."""

    label: str
    nbiods: int
    #: "client write speed (KB/sec.)"
    client_kb_per_sec: float
    #: "server cpu util. (%)"
    server_cpu_pct: float
    #: "server disk (KB/sec)" — aggregate over stripe members.
    disk_kb_per_sec: float
    #: "server disk (trans/sec)"
    disk_trans_per_sec: float
    elapsed_seconds: float
    #: Gathering observability (None for the standard server).
    mean_batch_size: Optional[float] = None
    gather_success_rate: Optional[float] = None
    procrastinations: Optional[float] = None
    #: §6 handoff accounting: why each gathered batch stopped waiting.
    handoffs_nfsd: Optional[int] = None
    handoffs_mbuf: Optional[int] = None
    watchdog_sweeps: Optional[int] = None
    learned_skips: Optional[int] = None
    #: RPCs per user-level operation (repro.lease): completed RPC calls
    #: divided by syscall-level client operations.  The headline number
    #: lease caching moves; None when the run did not measure it.
    rpcs_per_op: Optional[float] = None
    #: Per-phase latency percentiles from the span stream, keyed by phase
    #: name -> {count, mean, p50, p95, p99, max} in seconds.  Only present
    #: when the run was traced (``TestbedConfig.tracing``).
    phases: Optional[Dict[str, Dict[str, float]]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        """The four numbers the paper prints, rounded the same way."""
        return {
            "client write speed (KB/sec.)": round(self.client_kb_per_sec),
            "server cpu util. (%)": round(self.server_cpu_pct),
            "server disk (KB/sec)": round(self.disk_kb_per_sec),
            "server disk (trans/sec)": round(self.disk_trans_per_sec),
        }

    def to_json(self) -> Dict[str, object]:
        """A machine-readable record; None-valued optionals are omitted."""
        payload: Dict[str, object] = {
            "label": self.label,
            "nbiods": self.nbiods,
            "client_kb_per_sec": round(self.client_kb_per_sec, 1),
            "server_cpu_pct": round(self.server_cpu_pct, 2),
            "disk_kb_per_sec": round(self.disk_kb_per_sec, 1),
            "disk_trans_per_sec": round(self.disk_trans_per_sec, 2),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        optionals = {
            "mean_batch_size": self.mean_batch_size,
            "gather_success_rate": self.gather_success_rate,
            "procrastinations": self.procrastinations,
            "handoffs_nfsd": self.handoffs_nfsd,
            "handoffs_mbuf": self.handoffs_mbuf,
            "watchdog_sweeps": self.watchdog_sweeps,
            "learned_skips": self.learned_skips,
            "rpcs_per_op": self.rpcs_per_op,
        }
        for name, value in optionals.items():
            if value is not None:
                payload[name] = round(value, 4) if isinstance(value, float) else value
        if self.phases is not None:
            payload["phases"] = {
                phase: {key: round(value, 6) for key, value in stats.items()}
                for phase, stats in self.phases.items()
            }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload
