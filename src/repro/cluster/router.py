"""Client-side mount router: every NFS call resolves to its shard locally.

The router is the cluster's "mount map".  Namespace operations (LOOKUP,
CREATE, REMOVE, SYMLINK, RENAME) carry a file *name*, which the
:class:`~repro.cluster.shardmap.ShardMap` places directly.  Data
operations (READ, WRITE, COMMIT, GETATTR, ...) carry only an opaque file
handle — so the moment a namespace reply hands the client a handle, the
router *pins* it to the shard that produced it.  Every subsequent call on
that handle routes from the pin table: zero extra RPCs, ever.

:class:`ClusterRpc` is the piece the :class:`~repro.nfs.client.NfsClient`
actually talks to.  It quacks like an :class:`~repro.rpc.client.RpcClient`
(same ``call`` signature, same ``endpoint`` attribute) but consults the
router per call, picks the right rack's transport, and feeds namespace
replies back into the pin table.  The NFS client itself is unchanged — a
client of a one-server testbed and a client of a 16-shard fleet run the
identical write path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.fs.vfs import FileHandle
from repro.nfs.protocol import (
    PROC_CREATE,
    PROC_LOOKUP,
    PROC_REMOVE,
    PROC_RENAME,
    PROC_SYMLINK,
)
from repro.rpc.client import RpcClient, RpcTimeoutError
from repro.rpc.messages import CLASS_MEDIUM

__all__ = ["MountRouter", "ClusterRpc"]

#: Procs routed by the file name in their args.
_NAME_PROCS = frozenset((PROC_LOOKUP, PROC_CREATE, PROC_REMOVE, PROC_SYMLINK))
#: Namespace procs whose reply carries the new/found file handle.
_PINNING_PROCS = frozenset((PROC_LOOKUP, PROC_CREATE, PROC_SYMLINK))


class _RouteState:
    """Mutable (logical, destination) pair shared with the route hook."""

    __slots__ = ("logical", "destination")

    def __init__(self, logical: str, destination: str) -> None:
        self.logical = logical
        self.destination = destination


class _RackMove(Exception):
    """A per-attempt re-resolution crossed racks; restart the transport."""

    def __init__(self, logical: str, destination: str) -> None:
        super().__init__(f"route moved to {destination} on another rack")
        self.logical = logical
        self.destination = destination


class MountRouter:
    """Resolves (proc, args) to a server host from the shard map + pins."""

    def __init__(self, shard_map, root_fhandle: FileHandle = (2, 0)) -> None:
        self.map = shard_map
        #: The well-known root handle, identical on every shard; root-level
        #: operations (MOUNT, STATFS, READDIR of the export root) go to the
        #: map's home shard instead of a pin.
        self.root_fhandle = root_fhandle
        #: File handle -> shard host, bound at namespace-reply time.
        self._fhandle_pins: Dict[FileHandle, str] = {}
        #: Name -> shard host overrides: RENAME creates these (the
        #: destination name stays on the source's shard), and so does a
        #: placement policy (the chosen shard differs from the map's hash
        #: choice, so later LOOKUPs must follow the decision).
        self._name_pins: Dict[str, str] = {}
        #: Logical shard name -> acting physical host (repro.replica).
        #: Promotion repoints a whole replica group with one entry: the
        #: ring arcs and every pinned handle keep the *logical* name, and
        #: only the transport destination changes.
        self._aliases: Dict[str, str] = {}
        #: Create-time placement policy (repro.tiering); None = pure map.
        self.placement = None

    def set_placement(self, policy) -> None:
        """Install a create-time placement policy (``place(name) -> host``).

        The decision is *sticky*: the moment a CREATE/SYMLINK routes
        through the policy, the name is pinned to the chosen shard — so a
        retransmitted or re-routed create can never land on a second shard
        just because free space or load shifted between attempts.
        """
        self.placement = policy

    # -- resolution --------------------------------------------------------------

    @property
    def home(self) -> str:
        """The shard that answers root-level (nameless) operations."""
        return self.map.server_for("/")

    def server_for_name(self, name: str) -> str:
        """Placement of a file name (pin overrides, then the map)."""
        return self._name_pins.get(name) or self.map.server_for(name)

    def server_for_fhandle(self, fhandle: FileHandle) -> str:
        """The shard a pinned handle lives on (home for the root handle)."""
        if fhandle == self.root_fhandle:
            return self.home
        try:
            return self._fhandle_pins[fhandle]
        except KeyError:
            raise KeyError(
                f"file handle {fhandle} is not pinned to any shard — "
                "it did not come from a routed LOOKUP/CREATE/SYMLINK"
            ) from None

    def route(self, proc: str, args) -> str:
        """The destination host for one call."""
        if proc in _NAME_PROCS:
            if (
                self.placement is not None
                and proc in (PROC_CREATE, PROC_SYMLINK)
                and args.name not in self._name_pins
            ):
                chosen = self.placement.place(args.name)
                self._name_pins[args.name] = chosen
                return chosen
            return self.server_for_name(args.name)
        if proc == PROC_RENAME:
            return self.server_for_name(args.src_name)
        fhandle = args if isinstance(args, tuple) else getattr(args, "fhandle", None)
        if fhandle is not None:
            return self.server_for_fhandle(fhandle)
        # MOUNT/UMOUNT carry a path string; anything else nameless is a
        # root-level operation.
        return self.home

    # -- learning from replies ----------------------------------------------------

    def observe(self, proc: str, args, server: str, result) -> None:
        """Fold one successful reply into the pin tables."""
        if proc in _PINNING_PROCS:
            fhandle, _fattr = result
            self._fhandle_pins[fhandle] = server
        elif proc == PROC_RENAME:
            # The file stayed on the source shard; future opens of the
            # destination name must route there, wherever the map would
            # have put that name.
            self._name_pins[args.dst_name] = server
            self._name_pins.pop(args.src_name, None)
        elif proc == PROC_REMOVE:
            self._name_pins.pop(args.name, None)

    def pins(self) -> Dict[FileHandle, str]:
        """A copy of the handle pin table (diagnostics/tests)."""
        return dict(self._fhandle_pins)

    # -- promotion aliases ---------------------------------------------------------

    def repoint(self, logical: str, physical: str) -> None:
        """Route every reference to ``logical`` at ``physical``.

        Called at promotion: the dead primary's name stays in the shard
        map and the pin tables, but every call resolved to it now lands on
        the promoted backup.
        """
        if physical == logical:
            self._aliases.pop(logical, None)
        else:
            self._aliases[logical] = physical

    def resolve(self, host: str) -> str:
        """The physical host currently acting for ``host``."""
        return self._aliases.get(host, host)

    def aliases(self) -> Dict[str, str]:
        """A copy of the promotion alias table (diagnostics/tests)."""
        return dict(self._aliases)

    # -- live-migration cutover ----------------------------------------------------

    def migrate_pin(self, fhandle: FileHandle, name: str, logical: str) -> None:
        """Atomically repoint one file at a new shard (repro.tiering).

        The cutover instant of a live migration: every client-held handle
        for the file, and the name itself, now resolve to ``logical``.
        One shared router per cluster means this is a single RPC-free
        state change — no client round-trips, the BuffetFS property the
        migration protocol is built around.
        """
        self._fhandle_pins[fhandle] = logical
        self._name_pins[name] = logical


class ClusterRpc:
    """An RpcClient-shaped facade that routes each call to its shard.

    One underlying :class:`RpcClient` per rack segment (each owns one
    endpoint + receiver); the router picks the shard, the shard's rack
    picks the transport.  Single-rack clusters degenerate to one
    transport with a per-call destination override.
    """

    def __init__(
        self,
        rpcs: List[RpcClient],
        router: MountRouter,
        rack_of_server: Dict[str, int],
        failover_attempts: Optional[int] = None,
    ) -> None:
        if not rpcs:
            raise ValueError("ClusterRpc needs at least one rack transport")
        if failover_attempts is not None and failover_attempts < 1:
            raise ValueError(
                f"failover_attempts must be >= 1, got {failover_attempts}"
            )
        self._rpcs = list(rpcs)
        self.router = router
        self._rack_of_server = dict(rack_of_server)
        #: Per-shard retry budget (repro.overload): transmissions against
        #: one shard before the router re-resolves the route.  During a
        #: failover outage the budget turns an infinitely stranded call
        #: into either a redirect (the map moved the shard's arcs) or a
        #: terminal RpcTimeoutError.  None = hard-mount: retry forever.
        self.failover_attempts = failover_attempts
        #: Reroute hook (repro.lease): called as ``(logical, physical)``
        #: the moment a stranded call discovers an alias repoint, so the
        #: cache stack can void and re-register leases the new primary's
        #: (empty) table no longer remembers.
        self.on_reroute = None

    @property
    def endpoint(self):
        """The primary rack's endpoint (metric naming, host identity)."""
        return self._rpcs[0].endpoint

    @property
    def congestion(self):
        """The congestion listener (an AIMD write window) — shared across
        every rack transport, since the window models the client's total
        outstanding write-behind, not one wire's."""
        return self._rpcs[0].congestion

    @congestion.setter
    def congestion(self, listener) -> None:
        for rpc in self._rpcs:
            rpc.congestion = listener

    def transport_for(self, server: str) -> RpcClient:
        return self._rpcs[self._rack_of_server.get(server, 0)]

    def set_on_call(self, handler) -> None:
        """Install a server-initiated-call handler (lease recalls) on every
        rack transport — a callback may arrive on any rack's endpoint."""
        for rpc in self._rpcs:
            rpc.on_call = handler

    def call(
        self,
        proc: str,
        args,
        size: int,
        reply_size: int = 160,
        weight: str = CLASS_MEDIUM,
        server: Optional[str] = None,
    ) -> Generator:
        """Route, delegate, and learn pins from the reply.

        The route is re-resolved before **every** transmission (the
        transport's per-attempt ``route`` hook): a promotion repoint or a
        live-migration cutover that lands mid-retry redirects the very
        next retransmission instead of burning the rest of the failover
        budget against the old shard.  A re-resolution that crosses racks
        restarts the call on the right transport.  A call that exhausts
        its whole budget without the route changing surfaces the timeout
        (soft-mount semantics).
        """
        logical = server or self.router.route(proc, args)
        destination = self.router.resolve(logical)
        while True:
            rpc = self.transport_for(destination)
            rack = self._rack_of_server.get(destination, 0)
            state = _RouteState(logical, destination)

            def reroute(state=state, rack=rack):
                relogical = server or self.router.route(proc, args)
                rerouted = self.router.resolve(relogical)
                if rerouted != state.destination:
                    if self._rack_of_server.get(rerouted, 0) != rack:
                        # The new destination lives on another rack: this
                        # transport cannot reach it — unwind and restart
                        # the call on the right endpoint.
                        raise _RackMove(relogical, rerouted)
                    if self.on_reroute is not None:
                        self.on_reroute(relogical, rerouted)
                    state.logical = relogical
                    state.destination = rerouted
                return state.destination

            try:
                reply = yield from rpc.call(
                    proc,
                    args,
                    size,
                    reply_size=reply_size,
                    weight=weight,
                    server=destination,
                    max_attempts=self.failover_attempts,
                    route=reroute,
                )
                logical = state.logical
            except _RackMove as move:
                if self.on_reroute is not None:
                    self.on_reroute(move.logical, move.destination)
                logical, destination = move.logical, move.destination
                continue
            except RpcTimeoutError:
                # Terminal only if the route is *still* unchanged: the
                # per-attempt hook already chased same-rack moves, but a
                # repoint can land in the gap after the final timeout.
                relogical = server or self.router.route(proc, args)
                rerouted = self.router.resolve(relogical)
                if rerouted != state.destination:
                    if self.on_reroute is not None:
                        self.on_reroute(relogical, rerouted)
                    logical, destination = relogical, rerouted
                    continue
                raise
            break
        if reply.ok:
            # Pins record the *logical* shard so they survive promotion.
            self.router.observe(proc, args, logical, reply.result)
        return reply

    # -- aggregated client-side counters ------------------------------------------

    def _sum(self, attribute: str) -> float:
        # Rack transports share one host name, hence one registry counter;
        # dedupe by identity so shared instruments count once.
        counters = {id(c): c for c in (getattr(rpc, attribute) for rpc in self._rpcs)}
        return sum(counter.value for counter in counters.values())

    @property
    def retransmissions_total(self) -> float:
        return self._sum("retransmissions")

    @property
    def completed_total(self) -> float:
        return self._sum("completed")
