"""Shard failover: crash a shard mid-run, redirect or promote, verify.

The single-server :class:`~repro.faults.controller.FaultController` drives
faults against *the* server; this controller speaks fleet.  A
:class:`ShardCrash` names which shard dies and when, how long it stays
unreachable, and what the cluster does about it:

* **crash** — the shard's volatile state dies
  (:meth:`NfsServer.simulate_crash`); the cluster oracle immediately
  checks every shard's crash contract;
* **outage** — the dead host is partitioned off its rack segment for the
  duration; clients retransmit into the void exactly as against a dead
  transceiver;
* **redirect** — while down, the shard leaves the shard map, so *new*
  files hash onto the survivors (consistent hashing promotes each of its
  ring-arc successors); pinned handles keep pointing at the dead shard
  and their clients simply wait it out — NFS hard-mount semantics;
* **promote** (repro.replica) — the shard's freshest surviving backup
  becomes the acting primary: the dead host is partitioned *permanently*,
  the router's alias table repoints the group's logical name (ring arcs
  and pinned handles untouched), and the promoted backup resyncs its
  peers from its retained log.  In-flight clients retransmit into the
  new primary, whose dup cache was primed by replication;
* **recovery** — the partition heals and (if redirected) the shard
  rejoins the map, reclaiming exactly its old arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs import PHASE_FAULT, collector_for

__all__ = ["ShardCrash", "FailoverController"]


@dataclass(frozen=True)
class ShardCrash:
    """One scripted shard failure."""

    #: Simulation time of the crash.
    at: float
    #: Index of the shard that dies.
    shard: int
    #: Seconds the host stays unreachable after the crash (0 = instant
    #: reboot, the paper's fast-restart assumption).
    outage: float = 0.0
    #: Drop the shard from the mount map while it is down, so new files
    #: route to the survivors.
    redirect: bool = False
    #: Promote the shard's freshest surviving backup (replica groups).
    #: The dead primary never returns; promotion replaces the outage.
    promote: bool = False

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")
        if self.outage < 0:
            raise ValueError(f"outage must be >= 0, got {self.outage}")
        if self.redirect and self.outage <= 0:
            raise ValueError(
                "redirect=True requires a positive outage: the redirect "
                "window *is* the outage window (an instant reboot leaves "
                "nothing to route around)"
            )
        if self.promote and self.redirect:
            raise ValueError(
                "promote and redirect are mutually exclusive: promotion "
                "keeps the shard's arcs and repoints them at a backup; "
                "redirect moves the arcs to other shards"
            )
        if self.promote and self.outage > 0:
            raise ValueError(
                "promote=True ignores outage: the dead primary is "
                "partitioned permanently and its backup takes over at once"
            )

    def describe(self) -> dict:
        return {
            "at": self.at,
            "shard": self.shard,
            "outage": self.outage,
            "redirect": self.redirect,
            "promote": self.promote,
        }


class FailoverController:
    """Drives scripted :class:`ShardCrash` events against a cluster."""

    def __init__(self, cluster, crashes: Sequence[ShardCrash], oracle=None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.plan = list(crashes)
        self.oracle = oracle
        self.obs = collector_for(self.env)
        #: Applied events: dicts with shard, times, and recovery actions.
        self.log: List[dict] = []
        self.crashes = 0
        self.promotions = 0

    def start(self) -> "FailoverController":
        """Spawn one driver process per planned crash; returns self."""
        for index, crash in enumerate(self.plan):
            if not 0 <= crash.shard < len(self.cluster.servers):
                raise ValueError(
                    f"crash #{index} names shard {crash.shard}; cluster has "
                    f"{len(self.cluster.servers)} shards"
                )
            self.env.process(
                self._drive(crash), name=f"failover:{index}:shard{crash.shard}"
            )
        return self

    def _drive(self, crash: ShardCrash):
        if crash.at > self.env.now:
            yield self.env.timeout(crash.at - self.env.now)
        server = self.cluster.servers[crash.shard]
        group = self._group_of(crash.shard)
        if group is not None:
            # A crash always hits the shard's *acting* primary — which may
            # already be a promoted backup from an earlier crash.
            server = group.primary
        segment = self.cluster.segment_of(server.host)
        started = self.env.now
        server.simulate_crash()
        self.crashes += 1
        promoted_host: Optional[str] = None
        if crash.promote:
            promoted_host = self._promote(group, server, segment)
        if self.oracle is not None:
            self.oracle.check(f"shard-crash#{self.crashes}")
        redirected = False
        redirect_skipped = False
        # The ring holds *logical* shard names; after a promotion the
        # acting primary is a backup host that was never a ring member,
        # so redirect must add/remove the logical name, not server.host.
        logical = self.cluster.servers[crash.shard].host
        ring_weight = 1.0
        if crash.outage > 0:
            segment.partition(server.host)
            if crash.redirect:
                if len(self.cluster.shard_map) > 1:
                    ring_weight = self.cluster.shard_map.weight_of(logical)
                    self.cluster.shard_map.remove_server(logical)
                    redirected = True
                else:
                    # A 1-shard map cannot lose its only server; record the
                    # request instead of silently dropping it.
                    redirect_skipped = True
            yield self.env.timeout(crash.outage)
            segment.heal(server.host)
            if redirected:
                self.cluster.shard_map.add_server(logical, weight=ring_weight)
        record = {
            "kind": "shard_crash",
            "shard": crash.shard,
            "host": server.host,
            "start": started,
            "end": self.env.now,
            "outage": crash.outage,
            "redirected": redirected,
            "redirect_skipped": redirect_skipped,
        }
        if promoted_host is not None:
            record["promoted"] = promoted_host
        self.log.append(record)
        if self.obs.enabled:
            attrs = {"kind": "shard_crash", "host": server.host}
            if promoted_host is not None:
                attrs["promoted"] = promoted_host
            self.obs.emit(
                PHASE_FAULT,
                "cluster",
                started,
                self.env.now,
                **attrs,
            )

    def _group_of(self, shard: int):
        groups = getattr(self.cluster, "groups", None)
        if not groups or shard >= len(groups):
            return None
        return groups[shard]

    def _promote(self, group, server, segment) -> Optional[str]:
        """Fail ``server`` over to the group's freshest backup.

        Returns the promoted host, or None when the group has nobody left
        to promote (K=0, or the backups are already spent) — the shard
        then just reboots in place, the paper's single-server behaviour.
        """
        if group is None:
            return None
        promoted = group.freshest_backup()
        if promoted is None:
            return None
        # The old primary never comes back: cut its client-facing host and
        # its replication endpoint off the wire, so a stale incarnation
        # can neither answer retransmissions nor ship stale batches.
        segment.partition(server.host)
        if server.replicator is not None:
            segment.partition(server.replicator.endpoint_host)
        group.promote(promoted)
        self.cluster.router.repoint(group.logical_host, promoted.host)
        if promoted.leases is not None:
            # The dead primary's grants are invisible to the promoted
            # table: open a one-TTL grace window so they drain by expiry
            # before any mutation here can conflict with them.  Clients
            # re-register via LEASE_RENEW when their calls reroute.
            promoted.leases.reset_volatile()
        # The new primary replays its retained log to the surviving peers:
        # the idempotent seq guard skips what they already have, and
        # lagging peers (whose session queues died with the old primary)
        # converge on the promoted prefix.
        promoted.replicator.activate(resync=True)
        self.promotions += 1
        return promoted.host
