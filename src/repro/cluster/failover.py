"""Shard failover: crash a shard mid-run, redirect, verify, recover.

The single-server :class:`~repro.faults.controller.FaultController` drives
faults against *the* server; this controller speaks fleet.  A
:class:`ShardCrash` names which shard dies and when, how long it stays
unreachable, and whether the mount map should *redirect* around it while
it is down:

* **crash** — the shard's volatile state dies
  (:meth:`NfsServer.simulate_crash`); the cluster oracle immediately
  checks every shard's crash contract;
* **outage** — the dead host is partitioned off its rack segment for the
  duration; clients retransmit into the void exactly as against a dead
  transceiver;
* **redirect** — while down, the shard leaves the shard map, so *new*
  files hash onto the survivors (consistent hashing promotes each of its
  ring-arc successors); pinned handles keep pointing at the dead shard
  and their clients simply wait it out — NFS hard-mount semantics;
* **recovery** — the partition heals and (if redirected) the shard
  rejoins the map, reclaiming exactly its old arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.obs import PHASE_FAULT, collector_for

__all__ = ["ShardCrash", "FailoverController"]


@dataclass(frozen=True)
class ShardCrash:
    """One scripted shard failure."""

    #: Simulation time of the crash.
    at: float
    #: Index of the shard that dies.
    shard: int
    #: Seconds the host stays unreachable after the crash (0 = instant
    #: reboot, the paper's fast-restart assumption).
    outage: float = 0.0
    #: Drop the shard from the mount map while it is down, so new files
    #: route to the survivors.
    redirect: bool = False

    def describe(self) -> dict:
        return {
            "at": self.at,
            "shard": self.shard,
            "outage": self.outage,
            "redirect": self.redirect,
        }


class FailoverController:
    """Drives scripted :class:`ShardCrash` events against a cluster."""

    def __init__(self, cluster, crashes: Sequence[ShardCrash], oracle=None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.plan = list(crashes)
        self.oracle = oracle
        self.obs = collector_for(self.env)
        #: Applied events: dicts with shard, times, and recovery actions.
        self.log: List[dict] = []
        self.crashes = 0

    def start(self) -> "FailoverController":
        """Spawn one driver process per planned crash; returns self."""
        for index, crash in enumerate(self.plan):
            if not 0 <= crash.shard < len(self.cluster.servers):
                raise ValueError(
                    f"crash #{index} names shard {crash.shard}; cluster has "
                    f"{len(self.cluster.servers)} shards"
                )
            self.env.process(
                self._drive(crash), name=f"failover:{index}:shard{crash.shard}"
            )
        return self

    def _drive(self, crash: ShardCrash):
        if crash.at > self.env.now:
            yield self.env.timeout(crash.at - self.env.now)
        server = self.cluster.servers[crash.shard]
        segment = self.cluster.segment_of(server.host)
        started = self.env.now
        server.simulate_crash()
        self.crashes += 1
        if self.oracle is not None:
            self.oracle.check(f"shard-crash#{self.crashes}")
        redirected = False
        if crash.outage > 0:
            segment.partition(server.host)
            if crash.redirect and len(self.cluster.shard_map) > 1:
                self.cluster.shard_map.remove_server(server.host)
                redirected = True
            yield self.env.timeout(crash.outage)
            segment.heal(server.host)
            if redirected:
                self.cluster.shard_map.add_server(server.host)
        record = {
            "kind": "shard_crash",
            "shard": crash.shard,
            "host": server.host,
            "start": started,
            "end": self.env.now,
            "outage": crash.outage,
            "redirected": redirected,
        }
        self.log.append(record)
        if self.obs.enabled:
            self.obs.emit(
                PHASE_FAULT,
                "cluster",
                started,
                self.env.now,
                kind="shard_crash",
                host=server.host,
            )
