"""repro.cluster — scale-out NFS service: shards, routing, failover.

The paper studies write gathering at *one* server; this package puts N of
those servers behind a deterministic shard map and a client-side mount
router, so the multi-server workload family (scaling sweeps, shard
crashes, rebalancing) can be measured against the same oracle-checked
crash contract as the single-server experiments.

Layout:

* :mod:`~repro.cluster.shardmap` — consistent hashing with virtual nodes
  (seeded, balanced, minimal movement on grow/shrink);
* :mod:`~repro.cluster.router` — the client-side mount map: names hash,
  handles pin, zero placement RPCs;
* :mod:`~repro.cluster.fleet` — :class:`ClusterConfig` / :class:`Cluster`
  construction (per-shard disks, NVRAM, nfsd pools, disjoint inode
  ranges);
* :mod:`~repro.cluster.oracle` — per-shard crash-contract oracles with
  router-driven ack dispatch;
* :mod:`~repro.cluster.failover` — scripted shard crashes with outage
  windows and mount-map redirect;
* :mod:`~repro.cluster.experiment` — :func:`run_cluster` and the
  servers × clients :func:`run_scaling_sweep`.
"""

from repro.cluster.experiment import (
    ClusterRunResult,
    ScalingSweepResult,
    run_cluster,
    run_scaling_sweep,
)
from repro.cluster.failover import FailoverController, ShardCrash
from repro.cluster.fleet import Cluster, ClusterConfig, build_cluster
from repro.cluster.oracle import ClusterOracle
from repro.cluster.router import ClusterRpc, MountRouter
from repro.cluster.shardmap import ShardMap

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterOracle",
    "ClusterRpc",
    "ClusterRunResult",
    "FailoverController",
    "MountRouter",
    "ScalingSweepResult",
    "ShardCrash",
    "ShardMap",
    "build_cluster",
    "run_cluster",
    "run_scaling_sweep",
]
