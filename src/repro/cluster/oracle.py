"""The cluster-wide crash contract: no acked write lost on *any* shard.

One :class:`~repro.faults.oracle.Oracle` per shard, plus client-side
dispatch: when a routed client's stable WRITE is acked, the router's pin
table says which shard made the promise, and exactly that shard's oracle
records it.  A check point (each shard crash, and the end of the run)
asserts every shard's acked-byte image against its own durable storage —
so a write acked by ``server-2`` that somehow landed on ``server-0``
shows up as a violation, not a coincidence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.oracle import Oracle

__all__ = ["ClusterOracle"]


class ClusterOracle:
    """Per-shard oracles with router-driven ack dispatch."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self._per_shard: Dict[str, Oracle] = {}
        for server in cluster.servers:
            self._oracle_for(server.host)

    def _oracle_for(self, host: str) -> Oracle:
        oracle = self._per_shard.get(host)
        if oracle is None:
            oracle = Oracle(env=self.env, server=self.cluster.server_by_host(host))
            self._per_shard[host] = oracle
        return oracle

    def shard(self, host: str) -> Oracle:
        """The one shard's oracle (tests poke at these directly)."""
        return self._oracle_for(host)

    # -- recording --------------------------------------------------------------

    def attach(self, client) -> None:
        """Shadow ``client``'s stable acks onto the acking shard's oracle."""
        router = client.rpc.router

        def record(fhandle, offset: int, data: bytes) -> None:
            host = router.server_for_fhandle(fhandle)
            self._oracle_for(host).record_ack(fhandle, offset, data)

        client.on_write_acked = record

    # -- checking ---------------------------------------------------------------

    def check(self, label: str = "final") -> List[str]:
        """Assert the crash contract on every shard; returns new violations."""
        found: List[str] = []
        # Grown shards may have joined since construction.
        for server in self.cluster.servers:
            oracle = self._oracle_for(server.host)
            found.extend(
                f"{server.host}: {violation}"
                for violation in oracle.check(label)
            )
        return found

    @property
    def acked_writes(self) -> int:
        return sum(oracle.acked_writes for oracle in self._per_shard.values())

    @property
    def checks(self) -> int:
        return sum(oracle.checks for oracle in self._per_shard.values())

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for host in sorted(self._per_shard):
            out.extend(
                f"{host}: {violation}"
                for violation in self._per_shard[host].violations
            )
        return out

    @property
    def clean(self) -> bool:
        return all(oracle.clean for oracle in self._per_shard.values())
