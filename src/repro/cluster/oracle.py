"""The cluster-wide crash contract: no acked write lost on *any* shard.

One :class:`~repro.faults.oracle.Oracle` per shard, plus client-side
dispatch: when a routed client's stable WRITE is acked, the router's pin
table says which shard made the promise, and exactly that shard's oracle
records it.  A check point (each shard crash, and the end of the run)
asserts every shard's acked-byte image against its own durable storage —
so a write acked by ``server-2`` that somehow landed on ``server-0``
shows up as a violation, not a coincidence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.oracle import Oracle

__all__ = ["ClusterOracle"]


class ClusterOracle:
    """Per-shard oracles with router-driven ack dispatch."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self._per_shard: Dict[str, Oracle] = {}
        #: Extra contract checks (repro.tiering's migration contract):
        #: each is called with the check label inside :meth:`check`, so
        #: every fault check and the final check walk them for free.
        self._extra_checks: List = []
        #: Violations those extra checks found, in detection order.
        self.extra_violations: List[str] = []
        for server in cluster.servers:
            self._oracle_for(server.host)

    def add_check(self, check) -> None:
        """Register ``check(label) -> List[str]`` to run at every check
        point (shard crashes, quiesce, final)."""
        self._extra_checks.append(check)

    def _oracle_for(self, host: str) -> Oracle:
        oracle = self._per_shard.get(host)
        if oracle is None:
            oracle = Oracle(env=self.env, server=self.cluster.server_by_host(host))
            # Triage context baked into every violation message: which
            # shard made the promise, and that the check ran against the
            # primary's role in its group.
            oracle.set_context(shard=host, role="primary")
            self._per_shard[host] = oracle
        return oracle

    def shard(self, host: str) -> Oracle:
        """The one shard's oracle (tests poke at these directly)."""
        return self._oracle_for(host)

    # -- recording --------------------------------------------------------------

    def attach(self, client) -> None:
        """Shadow ``client``'s acks onto the acking shard's oracle.

        Stable acks bind immediately; unstable acks park as pending on
        the acking shard and a COMMIT ack promotes them there.
        """
        router = client.rpc.router

        def record(fhandle, offset: int, data: bytes) -> None:
            host = router.server_for_fhandle(fhandle)
            self._oracle_for(host).record_ack(fhandle, offset, data)

        def record_unstable(fhandle, offset: int, data) -> None:
            host = router.server_for_fhandle(fhandle)
            self._oracle_for(host).record_unstable(fhandle, offset, data)

        def record_commit(fhandle, offset: int, data) -> None:
            host = router.server_for_fhandle(fhandle)
            self._oracle_for(host).record_commit(fhandle, offset, data)

        def record_read(fhandle, offset: int, data) -> None:
            host = router.server_for_fhandle(fhandle)
            self._oracle_for(host).record_read(fhandle, offset, data)

        client.on_write_acked = record
        client.on_unstable_acked = record_unstable
        client.on_commit_acked = record_commit
        client.on_read_acked = record_read

    def transfer_ino(self, ino: int, src_host: str, dst_host: str) -> None:
        """Hand one file's bookkeeping to another shard (live migration).

        Called in the cutover instant, right after the router's pins
        repoint: the acked image, its mask, and any still-uncommitted
        pending ranges now describe a promise the *destination* must
        keep, and future checks assert them against its durable state.
        """
        src = self._oracle_for(src_host)
        dst = self._oracle_for(dst_host)
        image = src._images.pop(ino, None)
        mask = src._acked.pop(ino, None)
        pending = src._pending.pop(ino, None)
        if image is not None:
            dst._images[ino] = image
        if mask is not None:
            dst._acked[ino] = mask
        if pending:
            dst._pending.setdefault(ino, []).extend(pending)

    def holders_of(self, ino: int) -> List[str]:
        """Shards currently tracking acked or pending ranges for ``ino``
        (the migration contract wants exactly one, ever)."""
        holders = []
        for host in sorted(self._per_shard):
            oracle = self._per_shard[host]
            mask = oracle._acked.get(ino)
            if (mask is not None and any(mask)) or oracle._pending.get(ino):
                holders.append(host)
        return holders

    def note_fault(self, record: dict) -> None:
        """Triage context: every shard oracle learns the latest fault, so
        violation messages can name what provoked them."""
        for oracle in self._per_shard.values():
            oracle.note_fault(record)

    # -- checking ---------------------------------------------------------------

    def check(self, label: str = "final") -> List[str]:
        """Assert the crash contract on every shard; returns new violations.

        A shard with backups (repro.replica) is held to the *group*
        contract — no acked write may be missing from the surviving
        replica set — instead of the single-image contract: mid-promotion
        the old primary's image is dead weight, and the promise lives on
        whichever survivors hold the bytes.
        """
        found: List[str] = []
        # Grown shards may have joined since construction.
        for index, server in enumerate(self.cluster.servers):
            oracle = self._oracle_for(server.host)
            group = self._group_for(index)
            if group is not None and group.replicas > 0:
                members = [
                    (member.host, member.ufs) for member in group.surviving()
                ]
                new = oracle.check_group(members, label)
            else:
                new = oracle.check(label)
            found.extend(f"{server.host}: {violation}" for violation in new)
        for check in self._extra_checks:
            extra = check(label)
            self.extra_violations.extend(extra)
            found.extend(extra)
        return found

    def _group_for(self, index: int):
        groups = getattr(self.cluster, "groups", None)
        if not groups or index >= len(groups):
            return None
        return groups[index]

    def check_divergence(self, label: str = "quiesce") -> List[str]:
        """Byte-compare surviving replica images after the run drains.

        The group contract tolerates lagging backups *mid-run*; once the
        fleet has quiesced (all batches shipped, acked, and applied) every
        surviving member of a group must agree byte-for-byte on every
        acked file — size and durable content.  Violations are recorded on
        the shard's oracle so :attr:`clean` reflects them.
        """
        found: List[str] = []
        now = self.env.now
        for index, server in enumerate(self.cluster.servers):
            group = self._group_for(index)
            if group is None or group.replicas == 0:
                continue
            oracle = self._oracle_for(server.host)
            survivors = group.surviving()
            if len(survivors) < 2:
                continue
            shard_found: List[str] = []
            reference = survivors[0]
            for ino in oracle.acked_inos():
                sizes = {}
                for member in survivors:
                    snapshot = member.ufs.cache.durable.inodes.get(ino)
                    sizes[member.host] = None if snapshot is None else snapshot.size
                reference_size = sizes[reference.host]
                for member in survivors[1:]:
                    if sizes[member.host] != reference_size:
                        shard_found.append(
                            f"[{label} t={now:.6f}] ino {ino}: durable size "
                            f"diverges ({reference.host}={reference_size}, "
                            f"{member.host}={sizes[member.host]})"
                        )
                        continue
                    if not reference_size:
                        continue
                    want = reference.ufs.durable_read(ino, 0, reference_size)
                    got = member.ufs.durable_read(ino, 0, reference_size)
                    if got != want:
                        shard_found.append(
                            f"[{label} t={now:.6f}] ino {ino}: durable bytes "
                            f"diverge between {reference.host} and {member.host}"
                        )
            oracle.checks += 1
            oracle.violations.extend(shard_found)
            found.extend(f"{server.host}: {violation}" for violation in shard_found)
        return found

    @property
    def acked_writes(self) -> int:
        return sum(oracle.acked_writes for oracle in self._per_shard.values())

    @property
    def checks(self) -> int:
        return sum(oracle.checks for oracle in self._per_shard.values())

    @property
    def read_violations(self) -> List[str]:
        """Silent-corruption reads (acked READ bytes != acked write image)."""
        out: List[str] = []
        for host in sorted(self._per_shard):
            out.extend(
                f"{host}: {violation}"
                for violation in self._per_shard[host].read_violations
            )
        return out

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for host in sorted(self._per_shard):
            out.extend(
                f"{host}: {violation}"
                for violation in self._per_shard[host].violations
            )
        out.extend(self.extra_violations)
        return out

    @property
    def clean(self) -> bool:
        return not self.extra_violations and all(
            oracle.clean for oracle in self._per_shard.values()
        )
