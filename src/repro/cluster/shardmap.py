"""The deterministic shard map: consistent hashing with virtual nodes.

Placement decisions are made *client-side* from a small, shared map — no
directory service, no placement RPCs (the BuffetFS argument).  The map is
a classic consistent-hash ring: each server contributes ``vnodes`` points
derived from a keyed BLAKE2 digest of ``"{seed}/{server}#{vnode}"``, and a
key belongs to the first ring point at or after its own digest.

Properties the cluster (and its property tests) rely on:

* **Deterministic** — digests, not Python ``hash()``, so the same seed
  yields the same placement in every process and across reruns;
* **Balanced** — with enough virtual nodes, shard loads concentrate
  around ``keys / servers``;
* **Minimal movement** — adding or removing one server only remaps the
  keys that land in that server's ring arcs; everything else stays put,
  which is what makes grow/shrink (and crash redirect) cheap;
* **Capacity weighting** (repro.tiering) — a server's ring-point count
  scales with its weight (weight ∝ tier capacity), and *reweighting* a
  server only adds or removes that server's own points: point labels are
  stable ``"{server}#{k}"`` for ``k < count``, so growing a weight adds
  new arcs (keys move *to* the server) and shrinking removes existing
  arcs (keys move *from* it) — never a third party's keys.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ShardMap"]


def _point(seed: int, label: str) -> int:
    """A stable 64-bit ring position for ``label`` under ``seed``."""
    digest = hashlib.blake2b(
        f"{seed}/{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Stable-hash placement of string keys onto a set of servers."""

    def __init__(
        self,
        servers: Sequence[str],
        vnodes: int = 64,
        seed: int = 0,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not servers:
            raise ValueError("a shard map needs at least one server")
        if len(set(servers)) != len(servers):
            raise ValueError(f"duplicate server names: {list(servers)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        #: (position, server) ring points, sorted by position.
        self._ring: List[Tuple[int, str]] = []
        self._servers: List[str] = []
        #: Per-server capacity weight; 1.0 = the nominal ``vnodes`` points.
        self._weights: Dict[str, float] = {}
        weights = weights or {}
        for server in servers:
            self.add_server(server, weight=weights.get(server, 1.0))

    # -- membership -------------------------------------------------------------

    @property
    def servers(self) -> List[str]:
        """Current members, in insertion order."""
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: str) -> bool:
        return server in self._servers

    def weight_of(self, server: str) -> float:
        """The server's capacity weight (1.0 = nominal)."""
        if server not in self._servers:
            raise ValueError(f"server {server!r} not in the map")
        return self._weights[server]

    def vnode_count(self, server: str) -> int:
        """Ring points ``server`` contributes at its current weight."""
        return self._count_for(self._weights.get(server, 1.0))

    def _count_for(self, weight: float) -> int:
        return max(1, round(self.vnodes * weight))

    def _points_for(self, server: str, count: Optional[int] = None) -> List[Tuple[int, str]]:
        if count is None:
            count = self.vnode_count(server)
        return [
            (_point(self.seed, f"{server}#{vnode}"), server)
            for vnode in range(count)
        ]

    def add_server(self, server: str, weight: float = 1.0) -> None:
        """Join ``server``; only keys in its new arcs move to it."""
        if server in self._servers:
            raise ValueError(f"server {server!r} already in the map")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self._servers.append(server)
        self._weights[server] = weight
        self._ring.extend(self._points_for(server))
        self._ring.sort()

    def remove_server(self, server: str) -> None:
        """Leave ``server``; only keys it owned move (to arc successors)."""
        if server not in self._servers:
            raise ValueError(f"server {server!r} not in the map")
        if len(self._servers) == 1:
            raise ValueError("cannot remove the last server")
        self._servers.remove(server)
        self._weights.pop(server, None)
        self._ring = [pt for pt in self._ring if pt[1] != server]

    def set_weight(self, server: str, weight: float) -> None:
        """Reweight ``server`` in place, moving the minimum set of keys.

        Point labels are the stable ``"{server}#{k}"`` prefix, so a
        heavier weight appends points ``[old_count, new_count)`` (keys
        move only *to* the server) and a lighter weight strips points
        ``[new_count, old_count)`` (keys move only *from* it, to their
        arc successors).  No key between two other servers ever moves.
        """
        if server not in self._servers:
            raise ValueError(f"server {server!r} not in the map")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        old_count = self.vnode_count(server)
        self._weights[server] = weight
        new_count = self._count_for(weight)
        if new_count > old_count:
            self._ring.extend(
                (_point(self.seed, f"{server}#{vnode}"), server)
                for vnode in range(old_count, new_count)
            )
            self._ring.sort()
        elif new_count < old_count:
            dropped = {
                _point(self.seed, f"{server}#{vnode}")
                for vnode in range(new_count, old_count)
            }
            self._ring = [
                pt for pt in self._ring
                if not (pt[1] == server and pt[0] in dropped)
            ]

    # -- placement ---------------------------------------------------------------

    def server_for(self, key: str) -> str:
        """The server responsible for ``key``."""
        position = _point(self.seed, f"key:{key}")
        index = bisect_right(self._ring, (position, "￿"))
        if index == len(self._ring):
            index = 0  # wrap around the ring
        return self._ring[index][1]

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: server}`` for every key."""
        return {key: self.server_for(key) for key in keys}

    def load(self, keys: Iterable[str]) -> Dict[str, int]:
        """Keys-per-server histogram (every member listed, even at 0)."""
        counts = {server: 0 for server in self._servers}
        for key in keys:
            counts[self.server_for(key)] += 1
        return counts

    def describe(self) -> dict:
        """A JSON-ready summary (stable ordering)."""
        summary = {
            "servers": list(self._servers),
            "vnodes": self.vnodes,
            "seed": self.seed,
            "ring_points": len(self._ring),
        }
        if any(weight != 1.0 for weight in self._weights.values()):
            summary["weights"] = {
                server: self._weights[server] for server in self._servers
            }
        return summary
