"""The deterministic shard map: consistent hashing with virtual nodes.

Placement decisions are made *client-side* from a small, shared map — no
directory service, no placement RPCs (the BuffetFS argument).  The map is
a classic consistent-hash ring: each server contributes ``vnodes`` points
derived from a keyed BLAKE2 digest of ``"{seed}/{server}#{vnode}"``, and a
key belongs to the first ring point at or after its own digest.

Properties the cluster (and its property tests) rely on:

* **Deterministic** — digests, not Python ``hash()``, so the same seed
  yields the same placement in every process and across reruns;
* **Balanced** — with enough virtual nodes, shard loads concentrate
  around ``keys / servers``;
* **Minimal movement** — adding or removing one server only remaps the
  keys that land in that server's ring arcs; everything else stays put,
  which is what makes grow/shrink (and crash redirect) cheap.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["ShardMap"]


def _point(seed: int, label: str) -> int:
    """A stable 64-bit ring position for ``label`` under ``seed``."""
    digest = hashlib.blake2b(
        f"{seed}/{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Stable-hash placement of string keys onto a set of servers."""

    def __init__(self, servers: Sequence[str], vnodes: int = 64, seed: int = 0) -> None:
        if not servers:
            raise ValueError("a shard map needs at least one server")
        if len(set(servers)) != len(servers):
            raise ValueError(f"duplicate server names: {list(servers)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        #: (position, server) ring points, sorted by position.
        self._ring: List[Tuple[int, str]] = []
        self._servers: List[str] = []
        for server in servers:
            self.add_server(server)

    # -- membership -------------------------------------------------------------

    @property
    def servers(self) -> List[str]:
        """Current members, in insertion order."""
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: str) -> bool:
        return server in self._servers

    def _points_for(self, server: str) -> List[Tuple[int, str]]:
        return [
            (_point(self.seed, f"{server}#{vnode}"), server)
            for vnode in range(self.vnodes)
        ]

    def add_server(self, server: str) -> None:
        """Join ``server``; only keys in its new arcs move to it."""
        if server in self._servers:
            raise ValueError(f"server {server!r} already in the map")
        self._servers.append(server)
        self._ring.extend(self._points_for(server))
        self._ring.sort()

    def remove_server(self, server: str) -> None:
        """Leave ``server``; only keys it owned move (to arc successors)."""
        if server not in self._servers:
            raise ValueError(f"server {server!r} not in the map")
        if len(self._servers) == 1:
            raise ValueError("cannot remove the last server")
        self._servers.remove(server)
        self._ring = [pt for pt in self._ring if pt[1] != server]

    # -- placement ---------------------------------------------------------------

    def server_for(self, key: str) -> str:
        """The server responsible for ``key``."""
        position = _point(self.seed, f"key:{key}")
        index = bisect_right(self._ring, (position, "￿"))
        if index == len(self._ring):
            index = 0  # wrap around the ring
        return self._ring[index][1]

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: server}`` for every key."""
        return {key: self.server_for(key) for key in keys}

    def load(self, keys: Iterable[str]) -> Dict[str, int]:
        """Keys-per-server histogram (every member listed, even at 0)."""
        counts = {server: 0 for server in self._servers}
        for key in keys:
            counts[self.server_for(key)] += 1
        return counts

    def describe(self) -> dict:
        """A JSON-ready summary (stable ordering)."""
        return {
            "servers": list(self._servers),
            "vnodes": self.vnodes,
            "seed": self.seed,
            "ring_points": len(self._ring),
        }
