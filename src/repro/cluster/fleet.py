"""Fleet construction: N independent NFS servers behind one shard map.

A :class:`Cluster` is the multi-server analogue of
:class:`~repro.experiments.testbed.Testbed`: one simulation environment,
one or more shared network segments ("racks"), and N complete server
stacks — each shard owns its own spindles, optional Presto NVRAM board,
UFS instance, and nfsd pool, exactly as if it were a standalone testbed
server.  Shards share nothing but the wire.

Each shard's UFS gets a disjoint inode range (``ino_base``), so file
handles are unambiguous fleet-wide — the router's pin table and the
cluster oracle both depend on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.cluster.router import ClusterRpc, MountRouter
from repro.cluster.shardmap import ShardMap
from repro.core.policy import GatherPolicy
from repro.disk.device import DiskDevice, Storage
from repro.disk.model import RZ26, DiskSpec
from repro.disk.stripe import StripeSet
from repro.fs.ufs import ROOT_INO
from repro.net.segment import Segment
from repro.net.spec import FDDI, NetSpec
from repro.nfs.client import NfsClient
from repro.nvram.presto import PrestoCache
from repro.obs import RecordingCollector, install, registry_for
from repro.rpc.client import RpcClient
from repro.server.base import NfsServer
from repro.server.config import ServerConfig, WritePath
from repro.sim import Environment

__all__ = ["ClusterConfig", "Cluster", "build_cluster"]

#: Inode-number stride between shards: shard k allocates file inodes from
#: ``(k + 1) * INO_STRIDE`` upward, so handles never collide fleet-wide.
INO_STRIDE = 1_000_000


@dataclass
class ClusterConfig:
    """One scale-out configuration: the fleet, the map, and the wire."""

    #: Number of server shards.
    servers: int = 2
    #: Virtual nodes per server on the consistent-hash ring.
    vnodes: int = 64
    #: Network segments; servers (and client endpoints) spread round-robin
    #: across racks.  1 = the paper's single shared medium.
    racks: int = 1
    netspec: NetSpec = FDDI
    write_path: WritePath = WritePath.GATHER
    nbiods: int = 4
    #: Per-shard NVRAM accelerator: None = off, else capacity in bytes.
    presto_bytes: Optional[int] = None
    #: Spindles per shard.
    stripes: int = 1
    disk_spec: DiskSpec = RZ26
    nfsds: int = 8
    cpu_scale: float = 1.0
    verify_stable: bool = True
    gather_policy: GatherPolicy = field(default_factory=GatherPolicy)
    client_write_cpu: float = 0.0003
    seed: int = 0
    loss_rate: float = 0.0
    net_seed: Optional[int] = None
    tracing: bool = False
    #: Per-shard retry budget for routed calls (repro.overload): the
    #: transmissions a client spends on one shard before re-resolving the
    #: route (failover redirect) or surfacing ETIMEDOUT.  None = retry
    #: forever, the hard-mount behaviour — except with replicas, where a
    #: small default budget is installed so in-flight calls against a dead
    #: primary re-resolve into its promoted backup.
    failover_attempts: Optional[int] = None
    #: Backups per shard (K, repro.replica).  0 = no replication: the
    #: cluster is byte-identical to its pre-replica behaviour.
    replicas: int = 0
    #: Backups that must ack stable storage before a reply is released.
    quorum: int = 1
    #: Lease TTL in seconds (repro.lease): every shard (primaries *and*
    #: backups, so a promoted backup can keep granting) runs a
    #: LeaseManager and every client gets a CacheStack.  None = off.
    lease_ttl: Optional[float] = None
    #: Memory-pressure ceiling for the async_commit path (repro.commit);
    #: None = the ServerConfig default (512 KB).
    unstable_limit_bytes: Optional[int] = None
    #: Heterogeneous tiers (repro.tiering): a sequence of
    #: :class:`~repro.tiering.tiers.TierConfig` hardware classes.  When
    #: set, ``servers`` is derived (the sum of tier shard counts), each
    #: shard gets its tier's storage stack (NVRAM, spindles, volume
    #: size), and the ring is capacity-weighted.  None = a homogeneous
    #: fleet from the flat fields above.
    tiers: Optional[List] = None

    def __post_init__(self) -> None:
        self.write_path = WritePath.coerce(self.write_path)
        if self.tiers:
            names = [tier.name for tier in self.tiers]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate tier names: {names}")
            self.servers = sum(tier.shards for tier in self.tiers)
        if self.servers < 1:
            raise ValueError(f"need at least one server, got {self.servers}")
        if not 1 <= self.racks <= self.servers:
            raise ValueError(
                f"racks must be in [1, servers]; got {self.racks} racks "
                f"for {self.servers} servers"
            )
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {self.quorum}")
        if self.replicas and self.quorum > self.replicas:
            raise ValueError(
                f"quorum ({self.quorum}) cannot exceed replicas "
                f"({self.replicas})"
            )
        if self.replicas and self.write_path == WritePath.SIVA:
            raise ValueError(
                "replication piggybacks on the standard/gather commit "
                "points; the siva path is not supported with replicas > 0"
            )
        if self.replicas and self.failover_attempts is None:
            # Promotion strands any call already retransmitting into the
            # dead primary unless it can give up and re-resolve.
            self.failover_attempts = 3

    def variant(self, **changes) -> "ClusterConfig":
        """A copy with some fields replaced (sweeps build on this)."""
        return replace(self, **changes)


class Cluster:
    """A wired-up fleet: environment, racks, shard map, servers, clients."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.env = Environment()
        self.collector = RecordingCollector() if config.tracing else None
        if self.collector is not None:
            install(self.env, self.collector)
        net_seed = config.seed if config.net_seed is None else config.net_seed
        self.segments: List[Segment] = [
            Segment(
                self.env,
                config.netspec,
                name=(
                    config.netspec.name
                    if config.racks == 1
                    else f"{config.netspec.name}.rack{rack}"
                ),
                loss_rate=config.loss_rate,
                seed=net_seed + rack,
            )
            for rack in range(config.racks)
        ]
        #: Per-shard tier spec, parallel to shard indices (None entries
        #: for a homogeneous fleet) and host -> tier-name lookup.
        self._tier_specs: List = []
        self.tier_of: Dict[str, str] = {}
        if config.tiers:
            for tier in config.tiers:
                self._tier_specs.extend([tier] * tier.shards)
        else:
            self._tier_specs = [None] * config.servers
        self.servers: List[NfsServer] = []
        #: Per-shard spindles, parallel to ``servers``.
        self.disks: List[List[DiskDevice]] = []
        #: One replica group per shard, parallel to ``servers``
        #: (repro.replica; trivial single-member groups at K=0).
        self.groups: List = []
        #: Per-shard backup spindles: ``backup_disks[shard][backup]``.
        self.backup_disks: List[List[List[DiskDevice]]] = []
        self._rack_of_server: Dict[str, int] = {}
        for index in range(config.servers):
            server = self._build_server(index)
            self._build_group(index, server)
        weights = None
        if config.tiers:
            weights = {
                server.host: spec.effective_weight
                for server, spec in zip(self.servers, self._tier_specs)
            }
        self.shard_map = ShardMap(
            [server.host for server in self.servers],
            vnodes=config.vnodes,
            seed=config.seed,
            weights=weights,
        )
        self.router = MountRouter(self.shard_map, root_fhandle=(ROOT_INO, 0))
        self.clients: List[NfsClient] = []

    # -- construction -------------------------------------------------------------

    def _tier_spec(self, index: int):
        if index < len(self._tier_specs):
            return self._tier_specs[index]
        return None

    def _shard_hardware(self, index: int) -> tuple:
        """(presto_bytes, disk_spec, stripes, fs_bytes-or-None) for shard
        ``index`` — the tier's hardware class, or the flat config."""
        config = self.config
        tier = self._tier_spec(index)
        if tier is None:
            return config.presto_bytes, config.disk_spec, config.stripes, None
        return tier.presto_bytes, tier.disk_spec, tier.stripes, tier.fs_bytes

    def _build_storage(
        self, index: int, name_infix: str
    ) -> "tuple[List[DiskDevice], Storage]":
        presto_bytes, disk_spec, stripes, _fs_bytes = self._shard_hardware(index)
        disks = [
            DiskDevice(
                self.env,
                disk_spec,
                name=f"{disk_spec.name}-s{index}{name_infix}-{spindle}",
            )
            for spindle in range(stripes)
        ]
        base: Storage
        if stripes > 1:
            base = StripeSet(self.env, disks)
        else:
            base = disks[0]
        storage: Storage = (
            PrestoCache(self.env, base, capacity=presto_bytes)
            if presto_bytes
            else base
        )
        return disks, storage

    def _server_config(self, index: int) -> ServerConfig:
        config = self.config
        extra = {}
        if config.unstable_limit_bytes is not None:
            extra["unstable_limit_bytes"] = config.unstable_limit_bytes
        fs_bytes = self._shard_hardware(index)[3]
        if fs_bytes is not None:
            extra["fs_bytes"] = fs_bytes
        return ServerConfig(
            nfsds=config.nfsds,
            write_path=config.write_path,
            gather_policy=config.gather_policy,
            verify_stable=config.verify_stable,
            cpu_scale=config.cpu_scale,
            ino_base=(index + 1) * INO_STRIDE,
            lease_ttl=config.lease_ttl,
            **extra,
        )

    def _build_server(self, index: int) -> NfsServer:
        from repro.tiering.engine import ShardMigrator

        config = self.config
        rack = index % config.racks
        host = f"server-{index}"
        disks, storage = self._build_storage(index, "")
        server = NfsServer(
            self.env,
            self.segments[rack],
            storage,
            host=host,
            config=self._server_config(index),
        )
        ShardMigrator(server)
        self.servers.append(server)
        self.disks.append(disks)
        self._rack_of_server[host] = rack
        tier = self._tier_spec(index)
        self.tier_of[host] = tier.name if tier is not None else "default"
        return server

    def _build_group(self, index: int, primary: NfsServer) -> None:
        """Wrap shard ``index`` in a replica group (repro.replica).

        At K=0 the group is a trivial single-member record and *nothing
        else is built* — no replicators, no endpoints — so an unreplicated
        cluster stays byte-identical to its pre-replica behaviour.  With
        K>0, each backup is a complete server stack (own spindles, own
        UFS with the *same* ino_base as the primary, own nfsd pool) on the
        shard's rack segment, and every member gets a replicator; only
        the primary's starts active.
        """
        from repro.replica.group import ReplicaGroup
        from repro.tiering.engine import ShardMigrator
        from repro.replica.replicator import Replicator

        config = self.config
        rack = self._rack_of_server[primary.host]
        members: List[NfsServer] = [primary]
        shard_backup_disks: List[List[DiskDevice]] = []
        for backup_index in range(config.replicas):
            host = f"{primary.host}.b{backup_index + 1}"
            disks, storage = self._build_storage(index, f"b{backup_index + 1}")
            backup = NfsServer(
                self.env,
                self.segments[rack],
                storage,
                host=host,
                config=self._server_config(index),
            )
            ShardMigrator(backup)
            members.append(backup)
            shard_backup_disks.append(disks)
            self._rack_of_server[host] = rack
            self.tier_of[host] = self.tier_of[primary.host]
        group = ReplicaGroup(index=index, logical_host=primary.host, members=members)
        if config.replicas > 0:
            for member in members:
                Replicator(
                    member, group, quorum=config.quorum, segment=self.segments[rack]
                )
            primary.replicator.activate()
        self.groups.append(group)
        self.backup_disks.append(shard_backup_disks)

    def group_for_shard(self, index: int):
        """The replica group of shard ``index``."""
        return self.groups[index]

    def grow(self) -> NfsServer:
        """Join one more shard mid-run.

        Consistent hashing means only the keys landing in the newcomer's
        ring arcs move to it; every pinned handle stays where it is (no
        data migration — growth redirects *future* placement only).
        """
        index = len(self.servers)
        server = self._build_server(index)
        self._build_group(index, server)
        self.shard_map.add_server(server.host)
        return server

    def add_client(
        self, nbiods: Optional[int] = None, host: Optional[str] = None
    ) -> NfsClient:
        """Attach one client host, with an endpoint on every rack."""
        name = host or self.segments[0].unique_host("client")
        rpcs: List[RpcClient] = []
        for segment in self.segments:
            endpoint = segment.attach(name)
            rpcs.append(RpcClient(self.env, endpoint, self.servers[0].host))
        cluster_rpc = ClusterRpc(
            rpcs,
            self.router,
            self._rack_of_server,
            failover_attempts=self.config.failover_attempts,
        )
        effective_nbiods = self.config.nbiods if nbiods is None else nbiods
        # An async-commit fleet serves NFSv3 clients: unstable WRITE +
        # COMMIT, with a write window driving the COMMIT pressure rule.
        is_async = self.config.write_path == WritePath.ASYNC_COMMIT
        write_window = None
        if is_async:
            from repro.overload.window import WriteWindow

            write_window = WriteWindow(initial=max(1, effective_nbiods))
        client = NfsClient(
            self.env,
            cluster_rpc,
            nbiods=effective_nbiods,
            write_cpu=self.config.client_write_cpu,
            nfs_version=3 if is_async else 2,
            write_window=write_window,
        )
        if self.config.lease_ttl is not None:
            # Mandatory with leases: CacheStack registers the CB_RECALL
            # handler on every rack transport (set_on_call) and the
            # reroute hook that re-registers leases after a promotion.
            from repro.nfs.cache import CacheStack

            CacheStack(self.env, client)
        self.clients.append(client)
        return client

    # -- topology helpers ---------------------------------------------------------

    def server_by_host(self, host: str) -> NfsServer:
        for server in self.servers:
            if server.host == host:
                return server
        for group in self.groups:
            for member in group.members:
                if member.host == host:
                    return member
        raise KeyError(f"no shard named {host!r}")

    def segment_of(self, host: str) -> Segment:
        return self.segments[self._rack_of_server[host]]

    def crash_shard(self, index: int) -> NfsServer:
        """Crash-and-reboot one shard (volatile state dies, disks survive)."""
        server = self.servers[index]
        server.simulate_crash()
        return server

    # -- measured quantities ------------------------------------------------------

    def disk_stats_totals(self) -> tuple:
        """(bytes, transactions) across every spindle of every shard."""
        total_bytes = 0.0
        total_transactions = 0.0
        for shard_disks in self.disks:
            total_bytes += sum(d.stats.bytes.value for d in shard_disks)
            total_transactions += sum(d.stats.transactions.value for d in shard_disks)
        return total_bytes, total_transactions

    def stable_violations_total(self) -> int:
        return sum(len(server.stable_violations) for server in self.servers)

    def per_shard_rollup(self) -> List[dict]:
        """One metrics record per shard, from the shared registry.

        Includes disk totals, CPU utilization, completed write count and —
        on the gathering path — the shard's gather instruments (writes,
        batches, mean batch size, and gather ratio: the fraction of writes
        that shared their metadata update with at least one peer).
        """
        rollup: List[dict] = []
        for server, shard_disks in zip(self.servers, self.disks):
            ops = registry_for(self.env).snapshot(prefix=f"{server.host}.ops.")
            record: dict = {
                "host": server.host,
                "rack": self._rack_of_server[server.host],
                "cpu_pct": round(100.0 * server.cpu.utilization(), 2),
                "disk_bytes": sum(d.stats.bytes.value for d in shard_disks),
                "disk_transactions": sum(
                    d.stats.transactions.value for d in shard_disks
                ),
                "disk_writes": sum(d.stats.writes.value for d in shard_disks),
                "files_created": int(
                    ops.get(f"{server.host}.ops.create", {}).get("value", 0)
                ),
                "writes_completed": int(
                    ops.get(f"{server.host}.ops.write", {}).get("value", 0)
                ),
            }
            stats = getattr(server.write_path, "stats", None)
            if stats is not None:
                record.update(
                    {
                        "gather_writes": int(stats.writes.value),
                        "gather_batches": int(stats.batches.value),
                        "mean_batch_size": round(stats.mean_batch_size(), 4),
                        "gather_ratio": round(stats.gather_success_rate(), 4),
                    }
                )
            rollup.append(record)
        return rollup

    def aggregate_rollup(self) -> dict:
        """Cluster-wide totals over :meth:`per_shard_rollup`."""
        shards = self.per_shard_rollup()
        total_writes = sum(s.get("gather_writes", 0) for s in shards)
        gathered = sum(
            s.get("gather_ratio", 0.0) * s.get("gather_writes", 0) for s in shards
        )
        aggregate = {
            "disk_bytes": sum(s["disk_bytes"] for s in shards),
            "disk_transactions": sum(s["disk_transactions"] for s in shards),
            "disk_writes": sum(s["disk_writes"] for s in shards),
            "files_created": sum(s["files_created"] for s in shards),
            "writes_completed": sum(s["writes_completed"] for s in shards),
            "mean_cpu_pct": round(
                sum(s["cpu_pct"] for s in shards) / len(shards), 2
            ),
        }
        if total_writes:
            aggregate["gather_ratio"] = round(gathered / total_writes, 4)
        return aggregate


def build_cluster(config: ClusterConfig, clients: int = 1) -> Cluster:
    """Stand up a cluster with ``clients`` attached client hosts."""
    cluster = Cluster(config)
    for _ in range(clients):
        cluster.add_client()
    return cluster
