"""Cluster-wide experiments: the sharded write workload and scaling sweeps.

:func:`run_cluster` is the fleet analogue of the paper's file copy: every
client writes its own set of files, the shard map spreads those files
across the fleet, and the result records aggregate throughput next to
*per-shard* gathering efficacy — the tension this subsystem exists to
measure.  Sharding multiplies spindles and nfsd pools, but it also thins
each server's request stream, and write gathering (§5-§6) feeds on a
busy server: fewer same-file companions in the socket buffer means more
singleton batches.  :func:`run_scaling_sweep` quantifies exactly that
trade as servers × clients grow.

Everything is seeded: the same :class:`ClusterConfig` produces the same
placement, the same sim timeline, and byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

import warnings

from repro.cluster.failover import FailoverController, ShardCrash
from repro.cluster.fleet import Cluster, ClusterConfig
from repro.cluster.oracle import ClusterOracle
from repro.nfs.client import NfsClient
from repro.payload import PAYLOAD_FULL
from repro.sim import AllOf, Environment
from repro.workload.sequential import write_file

__all__ = ["ClusterRunResult", "ScalingSweepResult", "run_cluster", "run_scaling_sweep"]


@dataclass
class ClusterRunResult:
    """Everything one cluster run measured, JSON-stable under a seed."""

    servers: int
    clients: int
    vnodes: int
    racks: int
    write_path: str
    presto: bool
    seed: int
    file_kb: int
    files_per_client: int
    elapsed: float
    total_bytes: int
    aggregate_kb_per_sec: float
    per_shard: List[dict]
    aggregate: dict
    placement: dict
    acked_writes: int
    retransmissions: int
    crashes: int
    oracle_checks: int
    stable_violations: int
    faults: List[dict] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and self.stable_violations == 0

    def mean_gather_ratio(self) -> Optional[float]:
        """Write-weighted mean of the per-shard gather ratios."""
        total = sum(s.get("gather_writes", 0) for s in self.per_shard)
        if not total:
            return None
        gathered = sum(
            s.get("gather_ratio", 0.0) * s.get("gather_writes", 0)
            for s in self.per_shard
        )
        return gathered / total

    def to_dict(self) -> dict:
        payload = {
            "servers": self.servers,
            "clients": self.clients,
            "vnodes": self.vnodes,
            "racks": self.racks,
            "write_path": self.write_path,
            "presto": self.presto,
            "seed": self.seed,
            "file_kb": self.file_kb,
            "files_per_client": self.files_per_client,
            "elapsed": round(self.elapsed, 9),
            "total_bytes": self.total_bytes,
            "aggregate_kb_per_sec": round(self.aggregate_kb_per_sec, 2),
            "per_shard": self.per_shard,
            "aggregate": self.aggregate,
            "placement": self.placement,
            "acked_writes": self.acked_writes,
            "retransmissions": self.retransmissions,
            "crashes": self.crashes,
            "oracle_checks": self.oracle_checks,
            "stable_violations": self.stable_violations,
            "clean": self.clean,
            "faults": self.faults,
            "violations": list(self.violations),
        }
        ratio = self.mean_gather_ratio()
        if ratio is not None:
            payload["mean_gather_ratio"] = round(ratio, 4)
        return payload

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _client_files(host: str, files_per_client: int) -> List[str]:
    """The deterministic file names one client writes."""
    return [f"{host}-f{index}" for index in range(files_per_client)]


def _client_workload(
    env: Environment,
    client: NfsClient,
    names: Sequence[str],
    nbytes: int,
    think_time: float,
    payload: str = PAYLOAD_FULL,
) -> Generator:
    for name in names:
        yield from write_file(
            env, client, name, nbytes, think_time=think_time, payload=payload
        )
    return env.now


#: Default producer think time for cluster workloads.  Deliberately a
#: touch *slower* than FDDI's 5 ms procrastination interval: a saturating
#: fast producer gathers 100% everywhere (the biod train always fills a
#: batch), hiding the sharding effect.  At 6 ms the gatherer only wins
#: when server-side queueing holds same-file writes together — which is
#: exactly the per-server concurrency that sharding dilutes.
CLUSTER_THINK_TIME = 0.006


def _run_cluster(
    config: ClusterConfig,
    clients: int = 4,
    files_per_client: int = 2,
    file_kb: int = 64,
    think_time: float = CLUSTER_THINK_TIME,
    crashes: Optional[Sequence[ShardCrash]] = None,
    payload: str = PAYLOAD_FULL,
) -> ClusterRunResult:
    """Run the sharded write workload (optionally under shard crashes)."""
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    cluster = Cluster(config)
    oracle = ClusterOracle(cluster)
    hosts: List[str] = []
    writers = []
    env = cluster.env
    nbytes = file_kb * 1024
    for _ in range(clients):
        client = cluster.add_client()
        oracle.attach(client)
        host = client.rpc.endpoint.host
        hosts.append(host)
        writers.append(
            env.process(
                _client_workload(
                    env,
                    client,
                    _client_files(host, files_per_client),
                    nbytes,
                    think_time,
                    payload,
                ),
                name=f"workload:{host}",
            )
        )
    controller = None
    if crashes:
        controller = FailoverController(cluster, crashes, oracle=oracle).start()
    env.run(until=AllOf(env, writers))
    elapsed = max(proc.value for proc in writers)
    env.run()  # drain in-flight completions, NVRAM destage, watchdogs
    oracle.check("final")
    total_bytes = clients * files_per_client * nbytes
    placement = {
        host: 0 for host in (server.host for server in cluster.servers)
    }
    for host in hosts:
        for name in _client_files(host, files_per_client):
            placement[cluster.router.server_for_name(name)] += 1
    return ClusterRunResult(
        servers=len(cluster.servers),
        clients=clients,
        vnodes=config.vnodes,
        racks=config.racks,
        write_path=str(config.write_path),
        presto=bool(config.presto_bytes),
        seed=config.seed,
        file_kb=file_kb,
        files_per_client=files_per_client,
        elapsed=elapsed,
        total_bytes=total_bytes,
        aggregate_kb_per_sec=total_bytes / elapsed / 1024.0,
        per_shard=cluster.per_shard_rollup(),
        aggregate=cluster.aggregate_rollup(),
        placement=placement,
        acked_writes=oracle.acked_writes,
        retransmissions=int(
            sum(client.rpc.retransmissions_total for client in cluster.clients)
        ),
        crashes=controller.crashes if controller else 0,
        oracle_checks=oracle.checks,
        stable_violations=cluster.stable_violations_total(),
        faults=controller.log if controller else [],
        violations=oracle.violations,
    )


@dataclass
class ScalingSweepResult:
    """The servers × clients grid and its scaling-efficiency table."""

    server_counts: List[int]
    client_counts: List[int]
    rows: List[ClusterRunResult]

    def table(self) -> List[dict]:
        """One summary row per (servers, clients) cell.

        ``scaling_efficiency`` is throughput relative to perfect linear
        scaling from the 1-server cell at the same client count (absent
        when the sweep does not include 1 server).
        """
        base: dict = {}
        for row in self.rows:
            if row.servers == 1:
                base[row.clients] = row.aggregate_kb_per_sec
        out = []
        for row in self.rows:
            summary = {
                "servers": row.servers,
                "clients": row.clients,
                "aggregate_kb_per_sec": round(row.aggregate_kb_per_sec, 2),
                "mean_gather_ratio": (
                    round(row.mean_gather_ratio(), 4)
                    if row.mean_gather_ratio() is not None
                    else None
                ),
                "clean": row.clean,
            }
            reference = base.get(row.clients)
            if reference:
                summary["scaling_efficiency"] = round(
                    row.aggregate_kb_per_sec / (row.servers * reference), 4
                )
            out.append(summary)
        return out

    def to_dict(self) -> dict:
        return {
            "server_counts": list(self.server_counts),
            "client_counts": list(self.client_counts),
            "table": self.table(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @property
    def clean(self) -> bool:
        return all(row.clean for row in self.rows)


def _run_scaling_sweep(
    base: ClusterConfig,
    server_counts: Sequence[int],
    client_counts: Sequence[int],
    files_per_client: int = 2,
    file_kb: int = 64,
    think_time: float = CLUSTER_THINK_TIME,
    progress=None,
    payload: str = PAYLOAD_FULL,
) -> ScalingSweepResult:
    """Sweep the fleet size against the client population.

    Each cell is a fresh, independently seeded cluster run; ``progress``
    (if given) is called with each finished :class:`ClusterRunResult`.
    """
    rows: List[ClusterRunResult] = []
    for servers in server_counts:
        for clients in client_counts:
            result = _run_cluster(
                base.variant(servers=servers),
                clients=clients,
                files_per_client=files_per_client,
                file_kb=file_kb,
                think_time=think_time,
                payload=payload,
            )
            rows.append(result)
            if progress is not None:
                progress(result)
    return ScalingSweepResult(
        server_counts=list(server_counts),
        client_counts=list(client_counts),
        rows=rows,
    )


def run_cluster(*args, **kwargs) -> ClusterRunResult:
    """Deprecated entry point; use :func:`repro.experiments.run` with
    ``ExperimentSpec(kind="cluster", ...)``."""
    warnings.warn(
        "run_cluster() is deprecated; use repro.experiments.run("
        "ExperimentSpec(kind='cluster', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_cluster(*args, **kwargs)


def run_scaling_sweep(*args, **kwargs) -> ScalingSweepResult:
    """Deprecated entry point; use :func:`repro.experiments.run` with
    ``ExperimentSpec(kind="cluster", server_counts=..., client_counts=...)``."""
    warnings.warn(
        "run_scaling_sweep() is deprecated; use repro.experiments.run("
        "ExperimentSpec(kind='cluster', server_counts=..., client_counts=...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_scaling_sweep(*args, **kwargs)
