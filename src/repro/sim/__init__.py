"""Deterministic discrete-event simulation kernel used by all substrates."""

from repro.sim.core import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.errors import Interrupt, SimError, StopSimulation
from repro.sim.monitor import Counter, Ratio, Tally, TimeWeighted, UtilizationMeter
from repro.sim.resources import Container, PriorityResource, Request, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Interrupt",
    "SimError",
    "StopSimulation",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "Container",
    "Tally",
    "Counter",
    "Ratio",
    "TimeWeighted",
    "UtilizationMeter",
]
