"""Exception types used by the simulation kernel.

The kernel deliberately keeps its error surface small: processes see
:class:`Interrupt` when another process interrupts them, and misuse of the
kernel raises :class:`SimError`.
"""

from __future__ import annotations


class SimError(Exception):
    """Raised when the simulation kernel is used incorrectly.

    Examples: scheduling into the past, triggering an event twice, or
    running an environment whose event queue has been corrupted.
    """


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause`` object which
    the interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`, if any."""
        return self.args[0]


class StopSimulation(Exception):
    """Internal signal used by ``Environment.run(until=event)``."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)

    @property
    def value(self) -> object:
        return self.args[0]
