"""A small, deterministic, generator-based discrete-event simulation kernel.

This is the substrate every other subsystem in :mod:`repro` runs on.  It is
deliberately modeled on the well-known process/event style (processes are
Python generators that ``yield`` events), but implemented from scratch so the
repository has no simulation dependencies and so we can guarantee
deterministic event ordering: events scheduled for the same instant are
processed in (priority, insertion order).

Typical usage::

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0 and proc.value == "done"

Design notes
------------
* :class:`Event` is the primitive.  An event is *triggered* when it has a
  value (or an exception) and has been put on the queue; it is *processed*
  once its callbacks have run.
* :class:`Process` is itself an event that succeeds with the generator's
  return value, so processes can wait on each other.
* Failures propagate: if a process yields an event that fails, the exception
  is thrown into the generator at the yield point.  An unhandled failure with
  no waiter stops the simulation (errors never pass silently).

Hot-path layout
---------------
The kernel is the simulator's inner loop (one bench cell pops tens of
thousands of events), so the representation is tuned:

* every event class carries ``__slots__`` — no per-event ``__dict__``;
* heap entries are ``(time, seq, event)`` 3-tuples where ``seq`` folds the
  scheduling priority into the high bits of the insertion counter, so
  same-instant ordering needs one integer compare instead of two;
* resources and stores may hand back *synchronously processed* events
  (``callbacks is None`` before ever touching the queue) for uncontended
  grants; :meth:`Process._resume` consumes those without a scheduler round.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.errors import Interrupt, SimError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priority for kernel-internal wakeups (resource handoffs).
PRIORITY_URGENT = 0
#: Default scheduling priority for user events.
PRIORITY_NORMAL = 1

#: Priorities are folded into the high bits of the heap sequence number:
#: ``seq = (priority << _PRIORITY_SHIFT) + insertion_id``.  52 bits of
#: insertion ids is far beyond any run length we will ever see.
_PRIORITY_SHIFT = 52
_NORMAL_BIAS = PRIORITY_NORMAL << _PRIORITY_SHIFT

_PENDING = object()


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it on the environment queue.  Once the
    environment pops it and runs its callbacks it is *processed*.

    Resources and stores can also hand out events that are *processed at
    birth* (granted synchronously, never queued): those have
    ``callbacks is None`` and a value already in place, and a yielding
    process continues immediately.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set by a waiter that handled this event's failure, suppressing
        #: the "unhandled failure" crash.
        self.defused = False

    def __repr__(self) -> str:
        status = "pending"
        if self.triggered:
            status = "ok" if self._ok else "failed"
        if self.processed:
            status += ",processed"
        return f"<{type(self).__name__} {status} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the queue."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        heapq.heappush(env._queue, (env._now, _NORMAL_BIAS + env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception raised at their ``yield``.
        """
        if self._value is not _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        heapq.heappush(env._queue, (env._now, _NORMAL_BIAS + env._eid, self))
        return self

    def _finish_now(self, value: Any = None) -> "Event":
        """Mark succeeded *and processed* without ever touching the queue.

        Used by resources/stores for uncontended synchronous grants.  A
        process yielding such an event resumes inline (no scheduler round);
        nothing may append callbacks to it afterwards.
        """
        self._ok = True
        self._value = value
        self.callbacks = None
        return self


class Timeout(Event):
    """An event that fires automatically after ``delay`` units of time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self._delay = delay
        env._eid += 1
        heapq.heappush(env._queue, (env._now + delay, _NORMAL_BIAS + env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self._ok = True
        self._value = None
        self.defused = False
        self.callbacks = [process._resume]
        env._eid += 1
        heapq.heappush(env._queue, (env._now, env._eid, self))


class Process(Event):
    """A process is a running generator; it is also an event.

    The process event succeeds with the generator's return value, or fails
    with any exception the generator does not handle.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise SimError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).  Inspected by interrupt() and by resources.
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a process
        that is about to be resumed anyway is allowed (the interrupt wins,
        and the yielded event's eventual value is discarded).
        """
        if self.triggered:
            raise SimError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise SimError(f"{self!r} is not waiting; cannot interrupt now")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        # Detach from the old target so its trigger no longer resumes us.
        target = self._target
        if not target.processed and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, PRIORITY_URGENT, 0.0)

    # -- kernel internals ------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        self._target = None
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._eid += 1
                heapq.heappush(env._queue, (env._now, _NORMAL_BIAS + env._eid, self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._eid += 1
                heapq.heappush(env._queue, (env._now, _NORMAL_BIAS + env._eid, self))
                break

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                event = Event(env)
                event._ok = False
                event._value = SimError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                continue
            if callbacks is None:
                # Already processed (or a synchronous grant): feed its value
                # straight back in without a scheduler round.
                event = next_event
                continue
            callbacks.append(self._resume)
            self._target = next_event
            break
        env._active_process = None


class Condition(Event):
    """Waits for a set of events according to ``evaluate``.

    Succeeds with a dict mapping each *triggered-so-far* event to its value
    once ``evaluate(events, done_count)`` returns True.  Fails immediately if
    any constituent event fails.
    """

    __slots__ = ("_evaluate", "_events", "_done")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[Tuple[Event, ...], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimError("cannot mix events from different environments")
        if self._evaluate(self._events, self._done) and not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # A sibling failed after we already fired; don't crash the sim.
                event.defused = True
            return
        self._done += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition satisfied when *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = tuple(events)
        super().__init__(env, lambda evs, done: done == len(evs), events)


class AnyOf(Condition):
    """Condition satisfied when *any* constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = tuple(events)
        if not events:
            raise SimError("AnyOf requires at least one event")
        super().__init__(env, lambda evs, done: done >= 1, events)


class Environment:
    """The simulation clock and event queue.

    Time is a float in *seconds* throughout :mod:`repro` (network latencies
    of milliseconds are expressed as e.g. ``0.008``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap of ``(time, seq, event)``; ``seq`` has the priority folded
        #: into its high bits (see ``_PRIORITY_SHIFT``).
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- introspection ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling / execution --------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heapq.heappush(
            self._queue,
            (self._now + delay, (priority << _PRIORITY_SHIFT) + self._eid, event),
        )

    def step(self) -> None:
        """Process the single next event.  Raises SimError on an empty queue."""
        if not self._queue:
            raise SimError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody handled this failure; surface it rather than continue
            # silently with a broken simulation.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue empties), a number
        (run until that time), or an :class:`Event` (run until it fires and
        return its value).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event._value
            stop_event.callbacks.append(self._stop_on)
        else:
            at = float(until)
            if at < self._now:
                raise SimError(f"run(until={at}) is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_on)
            self._schedule(stop_event, PRIORITY_URGENT, at - self._now)

        # Inlined step() loop: this is the simulator's innermost loop, so
        # avoid the per-event method call and re-resolution of globals.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                when, _seq, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.processed:
            raise SimError("run() ended before the `until` event fired")
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event._ok:
            event.defused = True
            raise event._value
        raise StopSimulation(event._value)
