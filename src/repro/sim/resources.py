"""Shared-resource primitives for the simulation kernel.

Three families, mirroring what the NFS stack needs:

* :class:`Resource` / :class:`PriorityResource` — capacity-limited resources
  (a CPU, a disk arm, a vnode lock).  ``request()`` returns an event that
  fires when a slot is granted; release with ``release()`` or use the request
  as a context manager inside a process.
* :class:`Store` — a FIFO queue of Python objects (a socket buffer, a work
  queue).  Optionally bounded; ``put`` on a full bounded store can either
  wait or drop (the caller chooses via ``try_put``).
* :class:`Container` — a continuous level (bytes of NVRAM in use).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.sim.core import Environment, Event
from repro.sim.errors import SimError

__all__ = ["Resource", "PriorityResource", "Request", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager from within a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "priority", "_granted")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._granted = False

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if granted, or withdraw from the wait queue."""
        self.resource.release(self)


class Resource:
    """A capacity-limited resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {len(self.users)}/{self.capacity} used, "
            f"{len(self.queue)} queued>"
        )

    @property
    def count(self) -> int:
        """Number of slots currently granted."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot.  The returned event fires when the slot is granted.

        An uncontended request (nobody queued, free capacity) is granted
        *synchronously*: the returned event is already processed and a
        yielding process resumes inline without a scheduler round.
        """
        request = Request(self, priority)
        if self._idle() and len(self.users) < self.capacity:
            request._granted = True
            self.users.append(request)
            request._finish_now(request)
        else:
            self._enqueue(request)
            self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return a granted slot (or withdraw an ungranted request)."""
        if request._granted:
            self.users.remove(request)
            request._granted = False
            self._grant()
        else:
            self._withdraw(request)

    # -- overridable queueing discipline -----------------------------------

    def _idle(self) -> bool:
        """True when no request is waiting (cheap fast-path check)."""
        return not self.queue

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _pop_next(self) -> Request:
        return self.queue.popleft()

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self._pop_next()
            request._granted = True
            self.users.append(request)
            request.succeed(request)


class PriorityResource(Resource):
    """A resource granting by (priority, arrival order); lower wins."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._seq = 0

    def _idle(self) -> bool:
        return not self._heap

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (request.priority, self._seq, request))

    def _pop_next(self) -> Request:
        return heapq.heappop(self._heap)[2]

    def _withdraw(self, request: Request) -> None:
        self._heap = [entry for entry in self._heap if entry[2] is not request]
        heapq.heapify(self._heap)

    @property
    def queue(self):  # type: ignore[override]
        return [entry[2] for entry in sorted(self._heap)]

    @queue.setter
    def queue(self, value) -> None:
        # Base-class __init__ assigns an empty deque; ignore it.
        pass


class Store:
    """A FIFO object queue with blocking ``get`` and optional capacity.

    ``items`` is inspectable (the mbuf hunter of §6.5 scans the socket
    buffer's pending datagrams), and items can be *stolen* out of the middle
    of the queue with :meth:`steal`.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event fires once it has been accepted.

        When the store has room the returned event is already processed
        (synchronous accept) — a yielding process continues inline.
        """
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event._finish_now()
            self._dispatch()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put.  Returns False (drops) if the store is full."""
        if len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._dispatch()
        return True

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with the item.

        When an item is immediately available (and no earlier getter is
        queued) the returned event is already processed — a yielding
        process continues inline without a scheduler round.
        """
        if self.items and not self._getters:
            event = Event(self.env)
            event._finish_now(self.items.popleft())
            self._admit_putters()
            return event
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get.  Returns None if nothing is immediately ready."""
        if self.items and not self._getters:
            item = self.items.popleft()
            self._admit_putters()
            return item
        return None

    def steal(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Remove and return the first queued item matching ``predicate``.

        Returns None if no queued item matches.  This models the paper's
        "mbuf hunter" pulling a specific request out of the socket buffer.
        """
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                self._admit_putters()
                return item
        return None

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
        self._admit_putters()


class Container:
    """A continuous quantity with blocking ``get`` (and non-blocking put).

    Used for byte-counted capacities such as the NVRAM cache fill level.
    """

    def __init__(
        self, env: Environment, capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise SimError(f"container capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimError(f"init level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits under ``capacity``.

        When it fits immediately (and no earlier putter is queued) the
        returned event is already processed — synchronous accept.
        """
        if amount <= 0:
            raise SimError(f"put amount must be positive, got {amount}")
        event = Event(self.env)
        if not self._putters and self._level + amount <= self.capacity:
            self._level += amount
            event._finish_now()
            self._dispatch()
            return event
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once that much is available.

        When the level suffices immediately (and no earlier getter is
        queued) the returned event is already processed — synchronous grant.
        """
        if amount <= 0:
            raise SimError(f"get amount must be positive, got {amount}")
        event = Event(self.env)
        if not self._getters and self._level >= amount:
            self._level -= amount
            event._finish_now()
            self._dispatch()
            return event
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def try_get(self, amount: float) -> bool:
        """Immediately remove ``amount`` if available; else return False."""
        if amount <= 0:
            raise SimError(f"get amount must be positive, got {amount}")
        if self._getters or self._level < amount:
            return False
        self._level -= amount
        self._dispatch()
        return True

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progressed = True
