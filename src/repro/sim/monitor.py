"""Measurement helpers: tallies, counters, and time-weighted values.

These are used to extract exactly the quantities the paper's tables report:
client write speed (KB/s), server CPU utilization (%), disk KB/s and
transactions/s, and NFS operation latency.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim.core import Environment
from repro.sim.errors import SimError

__all__ = ["Tally", "Counter", "Ratio", "TimeWeighted", "UtilizationMeter"]


class Tally:
    """Streaming statistics over observed samples (latencies, sizes).

    Keeps count/mean/variance via Welford's algorithm and, optionally, the
    raw samples so percentiles can be computed (``keep_samples=True``).
    """

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Mean of samples seen so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, fraction: float) -> float:
        """Sample percentile (nearest-rank).  Requires ``keep_samples``."""
        if self._samples is None:
            raise SimError("Tally was created without keep_samples=True")
        if not self._samples:
            raise SimError("no samples recorded")
        if not 0.0 <= fraction <= 1.0:
            raise SimError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]


class Counter:
    """A monotonically increasing event/byte counter with rate helpers."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self.value = 0.0
        self._start = env.now

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        """Restart the counter and its rate window at the current time."""
        self.value = 0.0
        self._start = self.env.now

    def rate(self, until: Optional[float] = None) -> float:
        """Average rate (units/second) since creation or last reset."""
        end = self.env.now if until is None else until
        elapsed = end - self._start
        return self.value / elapsed if elapsed > 0 else 0.0


class Ratio:
    """A derived quotient over two counters, read at snapshot time.

    The canonical use is *RPCs per user-level operation*: numerator is the
    transport's completed-call counter, denominator the client's syscall
    counter.  Nothing is recorded here — the value is always computed from
    the two live counters, so a Ratio can be registered before, during, or
    after the counters move.
    """

    def __init__(self, name: str, numerator: Counter, denominator: Counter) -> None:
        self.name = name
        self.numerator = numerator
        self.denominator = denominator

    @property
    def value(self) -> float:
        """numerator / denominator, or 0.0 while the denominator is zero."""
        if not self.denominator.value:
            return 0.0
        return self.numerator.value / self.denominator.value


class TimeWeighted:
    """A piecewise-constant value whose time-weighted mean is tracked.

    Useful for queue lengths and levels.  ``set`` records a new value at the
    current simulation time.
    """

    def __init__(self, env: Environment, initial: float = 0.0) -> None:
        self.env = env
        self._value = initial
        self._last_change = env.now
        self._area = 0.0
        self._start = env.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def adjust(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        """Time-weighted mean from creation (or reset) to now."""
        now = self.env.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / elapsed

    def reset(self) -> None:
        self._area = 0.0
        self._start = self.env.now
        self._last_change = self.env.now


class UtilizationMeter:
    """Tracks what fraction of wall time a device is busy.

    Supports overlapping busy intervals (a multi-slot resource): the meter
    counts time during which at least one interval is open, and also
    integrates total busy-slot-seconds for mean-concurrency queries.
    """

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._active = 0
        self._busy_since = 0.0
        self._busy_time = 0.0
        self._slot_seconds = TimeWeighted(env, 0.0)
        self._start = env.now

    def begin(self) -> None:
        """Mark the start of a busy interval."""
        if self._active == 0:
            self._busy_since = self.env.now
        self._active += 1
        self._slot_seconds.adjust(1)

    def end(self) -> None:
        """Mark the end of a busy interval."""
        if self._active <= 0:
            raise SimError(f"UtilizationMeter {self.name!r}: end() without begin()")
        self._active -= 1
        self._slot_seconds.adjust(-1)
        if self._active == 0:
            self._busy_time += self.env.now - self._busy_since

    def add_busy(self, seconds: float) -> None:
        """Directly account ``seconds`` of busy time (non-overlapping use)."""
        if seconds < 0:
            raise SimError(f"busy seconds must be >= 0, got {seconds}")
        self._busy_time += seconds

    @property
    def busy_time(self) -> float:
        extra = self.env.now - self._busy_since if self._active else 0.0
        return self._busy_time + extra

    def utilization(self, until: Optional[float] = None) -> float:
        """Busy fraction in [0, 1] since creation or last reset."""
        end = self.env.now if until is None else until
        elapsed = end - self._start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def mean_concurrency(self) -> float:
        """Time-weighted mean number of simultaneously busy slots."""
        return self._slot_seconds.mean()

    def reset(self) -> None:
        self._busy_time = 0.0
        self._start = self.env.now
        if self._active:
            self._busy_since = self.env.now
        self._slot_seconds.reset()
