"""The ``repro overload`` experiment: goodput vs offered load past saturation.

A fleet of clients writes continuously at a paced offered rate while a
:class:`~repro.faults.events.RetransmitStorm` rages mid-run.  The sweep
crosses write path × Presto × adaptation mode:

* ``static`` — the reference port exactly as the paper ran it: fixed
  1.1 s doubling retransmission, a full-depth biod pool, and a server
  that sheds only by silent socket-buffer overflow;
* ``adaptive`` — the ``repro.overload`` stack: Van Jacobson RTO with
  Karn's rule and seeded jitter, an AIMD write window on the biod pool,
  and a bounded server admission queue with the dup-cache-aware
  early-reply shed policy.

Goodput is the :class:`~repro.faults.oracle.Oracle`'s ledger, not the
client's: only bytes covered by a *stable* WRITE acknowledgement count,
so retransmitted duplicates and timed-out attempts are worthless by
construction.  Past saturation the static schedule collapses — every
overflow stalls its client for >=1.1 s, the synchronized retries overflow
again — while the adaptive stack degrades to a plateau.

Each combo also runs a *crash probe*: a server crash in the middle of the
storm window, with the oracle asserting at the instant of death (and
again at end of run) that no acked write was lost — the paper's crash
contract must hold in both modes even mid-collapse.

Everything is seeded; same-seed reruns produce byte-identical JSON.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policy import GatherPolicy
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.faults.controller import FaultController
from repro.faults.events import AtTime, FaultPlan, RetransmitStorm, ServerCrash
from repro.faults.oracle import Oracle
from repro.net.spec import FDDI
from repro.overload.rto import AdaptiveRetryPolicy
from repro.overload.window import WriteWindow
from repro.sim import AllOf
from repro.workload.sequential import patterned_chunk

__all__ = ["OverloadConfig", "OverloadReport", "run_overload", "MODES"]

MODES = ("static", "adaptive")

#: NVRAM size for the presto=on arm (1 MB, the paper's board).
PRESTO_BYTES = 1 << 20

CHUNK = 8192


@dataclass
class OverloadConfig:
    """One overload sweep: the load axis, the fleet, and the storm."""

    #: Per-client offered write rates (bytes/sec), swept in order.  The
    #: aggregate offered load is ``clients *`` each value; the default
    #: axis runs from ~1/4 of plain-path saturation to ~30x past it.
    loads: Sequence[int] = (4_000, 8_000, 16_000, 48_000, 160_000, 480_000)
    clients: int = 12
    nbiods: int = 8
    #: Server daemons and queue bounds.  Deliberately lean: collapse
    #: requires the server's work reservoir (socket buffer + nfsds +
    #: parked writes) to drain within one static 1.1 s backoff, so the
    #: fleet's synchronized stalls actually starve the disk.
    nfsds: int = 4
    sockbuf_bytes: int = 48 * 1024
    max_parked: int = 8
    #: Measured window per point, sim-seconds.
    duration: float = 5.0
    write_paths: Sequence[str] = ("standard", "gather", "siva")
    presto_modes: Sequence[bool] = (False, True)
    modes: Sequence[str] = MODES
    netspec: object = FDDI
    seed: int = 0
    #: Storm window as fractions of ``duration``.
    storm_start_frac: float = 0.3
    storm_end_frac: float = 0.7
    storm_loss_rate: float = 0.25
    storm_capacity_bytes: int = 24 * 1024
    #: Server admission cap + shed policy (adaptive mode only).  The cap
    #: sits below the socket buffer's byte capacity so shedding is a
    #: policy decision, not a silent overflow.
    admission_max_requests: int = 4
    shed_policy: str = "early-reply"
    #: AIMD window geometry (adaptive mode only).
    window_initial: int = 4
    window_maximum: int = 64
    #: Jitter spread for adaptive retransmission timers.
    jitter: float = 0.1
    #: Retransmit-interval ceiling for the adaptive policy.  Far below the
    #: estimator's default 60 s: a hard-mount biod that backs off past the
    #: measurement window is a stranded pipeline slot, and real NFS
    #: clients cap the retrans timer at a few seconds for exactly this
    #: reason.  Karn backoff still doubles up to this ceiling.
    adaptive_max_rto: float = 2.0
    #: Relative slack when judging the adaptive curve monotone (sim noise
    #: from storm-window phase shifts, not a real goodput regression).
    monotone_tolerance: float = 0.05
    #: A curve "collapses" when its final point falls more than this
    #: fraction below its peak.
    collapse_margin: float = 0.03

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client, got {self.clients}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not self.loads:
            raise ValueError("need at least one load point")
        if list(self.loads) != sorted(self.loads):
            raise ValueError("loads must be ascending (the curve sweeps up)")
        for mode in self.modes:
            if mode not in MODES:
                raise ValueError(f"unknown mode {mode!r} (expected one of: {MODES})")
        if not 0.0 <= self.storm_start_frac < self.storm_end_frac <= 1.0:
            raise ValueError("need 0 <= storm_start_frac < storm_end_frac <= 1")

    @property
    def storm(self) -> RetransmitStorm:
        return RetransmitStorm(
            AtTime(round(self.storm_start_frac * self.duration, 9)),
            loss_rate=self.storm_loss_rate,
            capacity_bytes=self.storm_capacity_bytes,
            duration=round(
                (self.storm_end_frac - self.storm_start_frac) * self.duration, 9
            ),
        )

    def testbed_config(self, write_path: str, presto: bool, mode: str) -> TestbedConfig:
        adaptive = mode == "adaptive"
        return TestbedConfig(
            netspec=self.netspec,
            write_path=write_path,
            nbiods=self.nbiods,
            nfsds=self.nfsds,
            sockbuf_bytes=self.sockbuf_bytes,
            gather_policy=GatherPolicy(max_parked=self.max_parked),
            presto_bytes=PRESTO_BYTES if presto else None,
            verify_stable=True,
            seed=self.seed,
            admission_max_requests=self.admission_max_requests if adaptive else None,
            shed_policy=self.shed_policy,
        )


# -- one run --------------------------------------------------------------------


def _writer(env, client, name: str, rate: int, deadline: float, stagger: float):
    """Create ``name`` and write at ``rate`` bytes/sec offered until
    ``deadline``, then close (flushing write-behind).

    The pace timeout models the application producing data; when the
    client stack blocks (no biod / no window slot / inline RPC), offered
    load self-limits — that is the client/server flow control the window
    tightens under overload.  ``stagger`` offsets the fleet's start so
    the *offered* pacing is not phase-locked; the synchronization that
    matters for collapse is the retransmission schedule, not the load.
    """
    if stagger > 0:
        yield env.timeout(stagger)
    open_file = yield from client.create(name)
    pace = CHUNK / rate
    index = 0
    while env.now < deadline:
        yield env.timeout(pace)
        yield from client.write_stream(open_file, patterned_chunk(index, CHUNK))
        index += 1
    yield from client.close(open_file)


def _run_once(
    config: OverloadConfig,
    write_path: str,
    presto: bool,
    mode: str,
    rate: int,
    crash: bool,
) -> dict:
    """One testbed run: fleet writing at ``rate`` through the storm."""
    testbed = Testbed(config.testbed_config(write_path, presto, mode))
    env = testbed.env
    oracle = Oracle(testbed)
    adaptive = mode == "adaptive"
    for index in range(config.clients):
        policy = None
        window = None
        if adaptive:
            policy = AdaptiveRetryPolicy(
                max_rto=config.adaptive_max_rto,
                jitter=config.jitter,
                jitter_seed=config.seed,
            )
            window = WriteWindow(
                initial=min(config.window_initial, max(1, config.nbiods)),
                maximum=config.window_maximum,
            )
        client = testbed.add_client(policy=policy, write_window=window)
        oracle.attach(client)
    pace = CHUNK / rate
    writers = [
        env.process(
            _writer(
                env,
                client,
                f"load-{index}",
                rate,
                deadline=config.duration,
                stagger=round(index * pace / config.clients, 9),
            ),
            name=f"overload-writer:{index}",
        )
        for index, client in enumerate(testbed.clients)
    ]
    events: List = [config.storm]
    if crash:
        midpoint = round(
            (config.storm_start_frac + config.storm_end_frac) / 2.0 * config.duration,
            9,
        )
        events.append(ServerCrash(AtTime(midpoint), reboot_delay=0.05))
    plan = FaultPlan(name=f"overload-{mode}", events=tuple(events))
    controller = FaultController(testbed, plan, oracle=oracle).start()

    # Goodput is a *deadline snapshot*: bytes acked within the measured
    # window.  Work that limps in during the drain is real (hard mounts
    # retry forever) but late — counting it would reward queue-stuffing
    # and hide the collapse.
    snapshot = {}

    def _snapper():
        yield env.timeout(config.duration)
        snapshot["acked_bytes"] = oracle.acked_byte_total()
        snapshot["disk_busy"] = testbed.disks[0].stats.busy.utilization()

    env.process(_snapper(), name="overload-snapshot")
    env.run(until=AllOf(env, writers))
    env.run()  # drain in-flight completions, NVRAM destage, watchdogs
    oracle.check("final")
    goodput = snapshot["acked_bytes"] / config.duration
    rpc_retransmissions = sum(c.rpc.retransmissions.value for c in testbed.clients)
    rpc_timeouts = sum(c.rpc.timeouts.value for c in testbed.clients)
    admission = testbed.server.svc.admission
    record = {
        "offered_kbs_per_client": round(rate / 1024.0, 9),
        "offered_kbs_total": round(rate * config.clients / 1024.0, 9),
        "goodput_kbs": round(goodput / 1024.0, 9),
        "disk_busy_pct": round(100.0 * snapshot["disk_busy"], 9),
        # Time past the deadline for the backlog to quiesce — the
        # graceful-degradation signal (static strands calls in
        # multi-second backoffs; adaptive recovers in a few RTTs).
        "recovery_s": round(env.now - config.duration, 9),
        "acked_writes": oracle.acked_writes,
        "retransmissions": int(rpc_retransmissions),
        "timeouts": int(rpc_timeouts),
        "sockbuf_drops": int(testbed.segment.dropped.value),
        "dup_dropped": int(testbed.server.svc.duplicates_dropped.value),
        "dup_replayed": int(testbed.server.svc.duplicates_replayed.value),
        "stable_violations": len(testbed.server.stable_violations),
        "oracle_violations": list(oracle.violations),
        "crashes": controller.crashes,
    }
    if admission is not None:
        record["shed"] = {
            "refused": int(admission.shed.value),
            "evicted": int(admission.evicted.value),
            "early_replies": int(admission.early_replies.value),
            "dup_sheds": int(admission.dup_sheds.value),
        }
    if adaptive:
        record["karn_suppressed"] = sum(
            c.rpc.policy.karn_suppressed for c in testbed.clients
        )
        record["final_cwnd"] = [
            round(c.write_window.cwnd, 9) for c in testbed.clients
        ]
    return record


# -- the report -----------------------------------------------------------------


def _curve_flags(points: List[dict], tolerance: float, collapse_margin: float) -> dict:
    goodputs = [p["goodput_kbs"] for p in points]
    peak = max(goodputs)
    collapse = bool(peak > 0) and goodputs[-1] < (1.0 - collapse_margin) * peak
    monotone = all(
        later >= earlier * (1.0 - tolerance)
        for earlier, later in zip(goodputs, goodputs[1:])
    )
    return {
        "goodput_kbs": goodputs,
        "peak_goodput_kbs": peak,
        "collapse": collapse,
        "monotone_nondecreasing": monotone,
    }


@dataclass
class OverloadReport:
    """Aggregated sweep outcome, canonically serializable."""

    config: OverloadConfig
    combos: List[dict] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for combo in self.combos:
            prefix = (
                f"{combo['write_path']}/presto="
                f"{'on' if combo['presto'] else 'off'}"
            )
            for mode, curve in combo["curves"].items():
                for point in curve["points"]:
                    out.extend(
                        f"{prefix}/{mode}: {v}" for v in point["oracle_violations"]
                    )
                    if point["stable_violations"]:
                        out.append(
                            f"{prefix}/{mode}: {point['stable_violations']} "
                            "stable-before-reply violations"
                        )
            for mode, probe in combo.get("crash_probe", {}).items():
                out.extend(
                    f"{prefix}/{mode}/crash: {v}" for v in probe["oracle_violations"]
                )
                if probe["stable_violations"]:
                    out.append(
                        f"{prefix}/{mode}/crash: {probe['stable_violations']} "
                        "stable-before-reply violations"
                    )
        return out

    @property
    def clean(self) -> bool:
        """No oracle or stable-storage violation anywhere in the sweep."""
        return not self.violations

    @property
    def adaptation_holds(self) -> bool:
        """At the top load, every combo's adaptive goodput must at least
        match the static curve, and the adaptive curve must not collapse."""
        for combo in self.combos:
            verdict = combo.get("verdict")
            if verdict is not None and not verdict["adaptation_wins"]:
                return False
        return True

    def to_dict(self) -> dict:
        config = self.config
        return {
            "seed": config.seed,
            "duration": round(config.duration, 9),
            "clients": config.clients,
            "nbiods": config.nbiods,
            "loads_kbs_per_client": [round(r / 1024.0, 9) for r in config.loads],
            "storm": self.config.storm.describe(),
            "combos": self.combos,
            "clean": self.clean,
            "adaptation_holds": self.adaptation_holds,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _run_overload(config: Optional[OverloadConfig] = None, progress=None) -> OverloadReport:
    """Run the whole sweep; ``progress`` (if given) is called with a line
    of text after every completed run."""
    config = config or OverloadConfig()
    report = OverloadReport(config=config)
    for write_path in config.write_paths:
        for presto in config.presto_modes:
            combo: dict = {
                "write_path": str(write_path),
                "presto": presto,
                "curves": {},
                "crash_probe": {},
            }
            for mode in config.modes:
                points = [
                    _run_once(config, write_path, presto, mode, rate, crash=False)
                    for rate in config.loads
                ]
                curve = {"points": points}
                curve.update(
                    _curve_flags(
                        points, config.monotone_tolerance, config.collapse_margin
                    )
                )
                combo["curves"][mode] = curve
                if progress is not None:
                    progress(
                        f"{write_path}/presto={'on' if presto else 'off'}/{mode}: "
                        f"goodput {curve['goodput_kbs']} KB/s"
                    )
                probe = _run_once(
                    config, write_path, presto, mode, config.loads[-1], crash=True
                )
                combo["crash_probe"][mode] = probe
                if progress is not None:
                    status = "clean" if not probe["oracle_violations"] else "VIOLATED"
                    progress(
                        f"{write_path}/presto={'on' if presto else 'off'}/{mode}: "
                        f"mid-storm crash probe {status}"
                    )
            combo["verdict"] = _verdict(combo, config)
            report.combos.append(combo)
    return report


def run_overload(
    config: Optional[OverloadConfig] = None, progress=None
) -> OverloadReport:
    """Deprecated entry point; use :func:`repro.experiments.run` with
    ``ExperimentSpec(kind="overload", config=OverloadConfig(...))``."""
    warnings.warn(
        "run_overload() is deprecated; use repro.experiments.run("
        "ExperimentSpec(kind='overload', config=OverloadConfig(...)))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_overload(config, progress=progress)


def _verdict(combo: dict, config: OverloadConfig) -> Optional[dict]:
    """Compare modes at the top load (present only when both modes ran)."""
    curves: Dict[str, dict] = combo["curves"]
    if "static" not in curves or "adaptive" not in curves:
        return None
    static_top = curves["static"]["goodput_kbs"][-1]
    adaptive_top = curves["adaptive"]["goodput_kbs"][-1]
    return {
        "static_top_goodput_kbs": static_top,
        "adaptive_top_goodput_kbs": adaptive_top,
        "adaptation_wins": adaptive_top >= static_top * (1.0 - config.monotone_tolerance)
        and curves["adaptive"]["monotone_nondecreasing"],
    }
