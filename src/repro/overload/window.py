"""AIMD congestion window on outstanding biod write-behind.

The biod pool bounds a client's write-behind at ``nbiods`` outstanding
writes *always* — the reference client has no notion of a struggling
server, so a fleet of clients keeps presenting full-rate bursts into a
collapsing socket buffer.  :class:`WriteWindow` adds the TCP-style
additive-increase/multiplicative-decrease loop: a write timeout halves
the window (down to one outstanding write), a clean first-attempt
success ramps it back by ``ramp/cwnd``.  The effective biod gate becomes
``min(nbiods, window.slots)``.
"""

from __future__ import annotations

from repro.rpc.messages import CLASS_HEAVY

__all__ = ["WriteWindow"]


class WriteWindow:
    """Adaptive cap on a client's outstanding write-behind requests."""

    def __init__(self, initial: int = 4, maximum: int = 64, ramp: float = 1.0) -> None:
        if initial < 1:
            raise ValueError(f"initial window must be >= 1, got {initial}")
        if maximum < initial:
            raise ValueError(f"maximum {maximum} below initial {initial}")
        self.cwnd = float(initial)
        self.maximum = maximum
        self.ramp = ramp
        self.halvings = 0
        self.ramps = 0

    @property
    def slots(self) -> int:
        """Whole outstanding-write slots currently allowed (>= 1)."""
        return max(1, int(self.cwnd))

    # -- RpcClient congestion-listener surface --------------------------------

    def on_timeout(self, weight: str) -> None:
        """Multiplicative decrease: a heavy (write) timeout halves cwnd."""
        if weight != CLASS_HEAVY:
            return
        self.cwnd = max(1.0, self.cwnd / 2.0)
        self.halvings += 1

    def on_success(self, weight: str, attempts: int) -> None:
        """Additive increase, but only on a *clean* (single-transmission)
        heavy completion — a reply won by retransmitting proves nothing
        about spare server capacity."""
        if weight != CLASS_HEAVY or attempts > 1:
            return
        self.cwnd = min(float(self.maximum), self.cwnd + self.ramp / self.cwnd)
        self.ramps += 1
