"""repro.overload — graceful degradation under retransmit storms.

NFS-over-UDP congestion collapse, and its mitigation, in four pieces:

* :mod:`repro.overload.rto` — client-side adaptive retransmission: Van
  Jacobson SRTT/RTTVAR RTO estimation, Karn's algorithm, seeded jitter,
  and a soft/hard-mount retry budget;
* :mod:`repro.overload.window` — an AIMD congestion window on a client's
  outstanding biod write-behind;
* :mod:`repro.overload.admission` — server-side backpressure: a bounded
  admission queue with pluggable shed policies (drop-newest, drop-oldest,
  dup-cache-aware early reply);
* :mod:`repro.overload.experiment` — the ``repro overload`` goodput-vs-
  offered-load sweep past saturation, with a mid-storm crash checked by
  the :class:`~repro.faults.oracle.Oracle`.
"""

from repro.overload.admission import SHED_POLICIES, AdmissionQueue
from repro.overload.rto import AdaptiveRetryPolicy, RtoEstimator, retransmit_jitter
from repro.overload.window import WriteWindow

__all__ = [
    "AdaptiveRetryPolicy",
    "RtoEstimator",
    "retransmit_jitter",
    "WriteWindow",
    "AdmissionQueue",
    "SHED_POLICIES",
    "OverloadConfig",
    "OverloadReport",
    "run_overload",
    "MODES",
]


def __getattr__(name: str):
    # The experiment pulls in testbed/faults machinery; load it lazily so
    # importing the policy classes stays cheap and cycle-free.
    if name in ("OverloadConfig", "OverloadReport", "run_overload", "MODES"):
        import repro.overload.experiment as experiment

        return getattr(experiment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
