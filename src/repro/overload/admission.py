"""Server-side backpressure: a bounded nfsd admission queue with shed policies.

Without admission control the server "accepts" work until the socket
buffer's byte limit silently drops datagrams — the overflow is blind, so
a retransmit storm evicts *fresh* work and keeps duplicates with equal
probability.  :class:`AdmissionQueue` bounds the request queue by *count*
and makes the shed decision deliberate, at arrival time, before the
request costs any nfsd CPU:

* ``drop-newest`` — refuse the arriving datagram (classic tail drop, but
  counted and observable rather than silent);
* ``drop-oldest`` — evict the head of the queue to admit the newcomer
  (the oldest request is the one most likely already retransmitted, so
  its client's duplicate is in flight anyway);
* ``early-reply`` — consult the duplicate-request cache first: a
  duplicate of an IN_PROGRESS request is shed for free (§6.9 would drop
  it after paying decode CPU anyway), and a recent DONE duplicate is
  answered straight from the cached reply without ever entering the
  queue; fresh work falls back to drop-oldest.

The queue hooks :class:`~repro.net.udp.SocketBuffer` via its
``admission`` attribute and is consulted before the byte-capacity check,
so the byte bound (§4.2's 0.25 MB mbuf limit) still applies after
admission.
"""

from __future__ import annotations

from repro.net.udp import SocketBuffer, UdpEndpoint
from repro.obs import PHASE_SHED, collector_for, registry_for
from repro.rpc.dupcache import DuplicateRequestCache
from repro.rpc.messages import RpcCall
from repro.sim import Environment

__all__ = ["AdmissionQueue", "SHED_POLICIES"]

SHED_POLICIES = ("drop-newest", "drop-oldest", "early-reply")


class AdmissionQueue:
    """Bounded admission control for a server endpoint's socket buffer."""

    def __init__(
        self,
        env: Environment,
        endpoint: UdpEndpoint,
        dup_cache: DuplicateRequestCache,
        max_requests: int,
        policy: str = "drop-newest",
    ) -> None:
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        if policy not in SHED_POLICIES:
            names = ", ".join(SHED_POLICIES)
            raise ValueError(f"unknown shed policy {policy!r} (expected one of: {names})")
        self.env = env
        self.endpoint = endpoint
        self.dup_cache = dup_cache
        self.max_requests = max_requests
        self.policy = policy
        self.obs = collector_for(env)
        metrics = registry_for(env)
        prefix = f"admission.{endpoint.host}"
        self.admitted = metrics.counter(f"{prefix}.admitted")
        self.shed = metrics.counter(f"{prefix}.shed")
        self.evicted = metrics.counter(f"{prefix}.evicted")
        self.early_replies = metrics.counter(f"{prefix}.early_replies")
        self.dup_sheds = metrics.counter(f"{prefix}.dup_sheds")

    def admit(self, buffer: SocketBuffer, datagram) -> bool:
        """Decide the fate of one arriving datagram.

        Returns True to let the buffer queue it (byte check still
        follows), False to shed it here.
        """
        call = datagram.payload
        if not isinstance(call, RpcCall):
            return True  # stray non-request traffic is not ours to police
        if len(buffer) < self.max_requests:
            self.admitted.add(1)
            return True
        policy = self.policy
        if policy == "early-reply":
            disposition, cached_reply = self.dup_cache.peek(call)
            if disposition == "drop":
                # Duplicate of an in-progress request: §6.9 drops it after
                # decode anyway — shedding it at the door is pure savings.
                self.dup_sheds.add(1)
                self._emit(call, "dup_dropped")
                return False
            if disposition == "replay":
                self.endpoint.send(call.client, cached_reply, cached_reply.size)
                self.early_replies.add(1)
                self._emit(call, "early_reply")
                return False
            policy = "drop-oldest"  # fresh work: make room instead
        if policy == "drop-oldest":
            victim = buffer.evict_oldest()
            if victim is not None:
                self.evicted.add(1)
                evicted_call = victim.payload
                if isinstance(evicted_call, RpcCall):
                    # The victim was never dequeued, so check() never ran
                    # for it — nothing to forget in the dup cache.
                    self._emit(evicted_call, "evicted")
                self.admitted.add(1)
                return True
            # Queue drained between the length check and now: just admit.
            self.admitted.add(1)
            return True
        self.shed.add(1)
        self._emit(call, "refused")
        return False

    def _emit(self, call: RpcCall, action: str) -> None:
        if not self.obs.enabled:
            return
        self.obs.emit(
            PHASE_SHED,
            self.endpoint.host,
            self.env.now,
            self.env.now,
            proc=call.proc,
            client=call.client,
            xid=call.xid,
            action=action,
        )
