"""Adaptive retransmission: Van Jacobson RTO estimation with Karn's rule.

The reference port's client (§4.1) retransmits on a fixed 1.1 s doubling
schedule — fine against a paper-era server, but under overload it is the
engine of congestion collapse: every client that misses the window fires
again on the same schedule, re-synchronizing the storm.  This module is
the client half of ``repro.overload``:

* :class:`RtoEstimator` — the TCP-style smoothed round-trip estimator
  (SRTT/RTTVAR, ``RTO = SRTT + 4·RTTVAR``), clamped to a floor/ceiling;
* **Karn's algorithm** — a reply to a retransmitted call is ambiguous
  (it may answer any transmission), so it must never feed the estimator;
  instead a timeout *backs the RTO off* and the backoff is retained until
  a clean (first-transmission) sample arrives;
* **seeded jitter** — each (client host, xid, attempt) draws its own
  deterministic perturbation, so N clients that time out together do not
  re-synchronize, and same-seed runs stay byte-identical;
* **retry budget** — soft-mount semantics: after ``max_attempts``
  transmissions the call fails with
  :class:`~repro.rpc.client.RpcTimeoutError` (surfaced to the workload as
  ``ETIMEDOUT``).  ``max_attempts=None`` is a hard mount: retry forever.

:class:`AdaptiveRetryPolicy` is a drop-in replacement for
:class:`~repro.rpc.client.RpcTimeoutPolicy` — same ``timeout_for`` /
``observe`` / ``base`` surface, per weight class — so an
:class:`~repro.rpc.client.RpcClient` takes either without caring which.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.rpc.messages import CLASS_HEAVY, CLASS_LIGHT, CLASS_MEDIUM

__all__ = ["RtoEstimator", "AdaptiveRetryPolicy", "retransmit_jitter"]

#: Cap on the exponential-backoff exponent (2**16 · ceiling is already
#: astronomically past any ceiling clamp; this just bounds the arithmetic).
MAX_BACKOFF_EXPONENT = 16


def retransmit_jitter(seed: int, host: str, xid: int, attempt: int, spread: float) -> float:
    """Deterministic multiplicative jitter for one (re)transmission timer.

    Returns a factor in ``[1 - spread, 1 + spread]`` drawn from an RNG
    keyed on ``(seed, host, xid, attempt)`` — independent of call
    ordering, so same-seed runs are byte-identical while distinct clients
    (and distinct retries) decorrelate.
    """
    if spread <= 0.0:
        return 1.0
    rng = random.Random(f"{seed}/{host}/{xid}/{attempt}")
    return 1.0 + rng.uniform(-spread, spread)


class RtoEstimator:
    """Van Jacobson SRTT/RTTVAR retransmission-timeout estimator.

    ``observe`` folds one *clean* round-trip sample (Karn filtering is the
    caller's job); ``backoff`` doubles the working RTO after a timeout and
    the doubled value sticks until the next clean sample (Karn's backoff
    retention).
    """

    def __init__(
        self,
        initial_rto: float = 1.1,
        min_rto: float = 0.02,
        max_rto: float = 60.0,
        k: float = 4.0,
        alpha: float = 0.125,
        beta: float = 0.25,
    ) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError(f"need 0 < min_rto <= max_rto, got {min_rto}, {max_rto}")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = self._clamp(initial_rto)
        #: Retained backoff doublings (Karn): cleared by a clean sample.
        self.backoff_level = 0
        self.samples = 0

    def _clamp(self, value: float) -> float:
        return min(self.max_rto, max(self.min_rto, value))

    @property
    def rto(self) -> float:
        """The working timeout, including any retained backoff."""
        return self._clamp(self._rto * (2 ** min(self.backoff_level, MAX_BACKOFF_EXPONENT)))

    def observe(self, rtt: float) -> None:
        """Fold one clean (first-transmission) round-trip sample."""
        if rtt < 0:
            raise ValueError(f"rtt must be >= 0, got {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            error = rtt - self.srtt
            self.rttvar = (1.0 - self.beta) * self.rttvar + self.beta * abs(error)
            self.srtt = self.srtt + self.alpha * error
        self._rto = self._clamp(self.srtt + self.k * self.rttvar)
        self.backoff_level = 0  # a valid sample ends the backed-off regime
        self.samples += 1

    def backoff(self) -> None:
        """A timeout fired: double the working RTO (retained until a clean
        sample arrives — Karn's other half)."""
        self.backoff_level = min(self.backoff_level + 1, MAX_BACKOFF_EXPONENT)


class AdaptiveRetryPolicy:
    """Per-class adaptive retransmission timers with a retry budget.

    Drop-in for :class:`~repro.rpc.client.RpcTimeoutPolicy`: the
    :class:`~repro.rpc.client.RpcClient` calls ``interval_for`` per
    transmission, ``observe`` per completion (with the retransmission flag
    for Karn's rule), and ``on_timeout`` per expiry.
    """

    def __init__(
        self,
        initial_rto: float = 1.1,
        min_rto: float = 0.02,
        max_rto: float = 60.0,
        jitter: float = 0.1,
        jitter_seed: int = 0,
        max_attempts: Optional[int] = None,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.jitter = jitter
        self.jitter_seed = jitter_seed
        #: Soft-mount retry budget; None = hard mount (retry forever).
        self.max_attempts = max_attempts
        self._estimators: Dict[str, RtoEstimator] = {
            weight: RtoEstimator(initial_rto=initial_rto, min_rto=min_rto, max_rto=max_rto)
            for weight in (CLASS_LIGHT, CLASS_MEDIUM, CLASS_HEAVY)
        }
        self.karn_suppressed = 0

    def estimator(self, weight: str) -> RtoEstimator:
        est = self._estimators.get(weight)
        if est is None:
            est = self._estimators[weight] = RtoEstimator()
        return est

    def timeout_for(self, weight: str, attempt: int) -> float:
        """Unjittered interval before transmission ``attempt`` expires."""
        est = self.estimator(weight)
        exponent = min(attempt - 1, MAX_BACKOFF_EXPONENT)
        return min(est.max_rto, est.rto * (2 ** exponent))

    def interval_for(self, weight: str, attempt: int, host: str, xid: int) -> float:
        """The jittered retransmission interval actually armed."""
        factor = retransmit_jitter(self.jitter_seed, host, xid, attempt, self.jitter)
        return self.timeout_for(weight, attempt) * factor

    def observe(self, weight: str, latency: float, retransmitted: bool = False) -> None:
        """Fold one completed call's round trip — unless it was ever
        retransmitted, in which case Karn's rule discards the ambiguous
        sample (the reply may answer any of the transmissions)."""
        if retransmitted:
            self.karn_suppressed += 1
            return
        self.estimator(weight).observe(latency)

    def on_timeout(self, weight: str) -> None:
        """A retransmission timer expired: back the class's RTO off."""
        self.estimator(weight).backoff()

    def base(self, weight: str) -> float:
        """The class's working RTO (RpcTimeoutPolicy-compatible probe)."""
        return self.estimator(weight).rto
