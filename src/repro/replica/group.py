"""Replica-group membership: one shard's primary plus its K backups.

The group tracks *roles*, not placement: the shard map and every pinned
file handle keep naming the group's **logical host** (the original
primary's name); the router's alias table maps that logical name to
whichever member currently acts as primary.  Promotion therefore never
rewrites a pin or moves a ring arc — it flips one alias entry.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ReplicaGroup"]


class ReplicaGroup:
    """One shard's replica set: acting primary + backups + the fallen."""

    def __init__(self, index: int, logical_host: str, members: List) -> None:
        self.index = index
        #: The name the shard map and pin tables use for this group.
        self.logical_host = logical_host
        #: All members ever, in construction order; ``members[0]`` is the
        #: original primary.
        self.members = list(members)
        self.primary = self.members[0]
        #: Members permanently demoted by a crash-and-promote (a dead
        #: primary never rejoins: its volatile replication state is gone
        #: and the group has moved on without it).
        self.failed: List = []

    @property
    def replicas(self) -> int:
        """K: the number of backups the group was built with."""
        return len(self.members) - 1

    def surviving(self) -> List:
        """Members not permanently failed, in construction order."""
        return [member for member in self.members if member not in self.failed]

    def backups(self) -> List:
        """Surviving members other than the acting primary."""
        return [member for member in self.surviving() if member is not self.primary]

    def freshest_backup(self) -> Optional[object]:
        """The backup with the highest applied sequence number.

        FIFO replication sessions apply gapless prefixes, so the freshest
        backup provably holds every quorum-acked batch; ties break to the
        earliest member (deterministic).
        """
        candidates = self.backups()
        if not candidates:
            return None
        return max(candidates, key=lambda member: member.replicator.applied_seq)

    def promote(self, member) -> None:
        """Fail the acting primary and install ``member`` in its place."""
        if self.primary not in self.failed:
            self.failed.append(self.primary)
        self.primary = member
