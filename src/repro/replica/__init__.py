"""repro.replica — synchronous primary/backup shard replication.

Each shard of a :class:`~repro.cluster.fleet.Cluster` can be a *replica
group*: the primary plus K backups on distinct hosts and disks.  A
stable WRITE (or namespace mutation) is acked to the client only after
``quorum`` backups confirm it on their own stable storage, piggybacking
on the gathered flush — one batch, one replication round trip.  When a
primary dies, the freshest backup is promoted in place: the router's
alias table repoints the shard's logical name, clients retransmit into
the new primary, and its replication-primed duplicate cache replays any
ack the old primary already sent.  The guarantee under test: **no acked
write is ever missing from the surviving replica set.**
"""

from repro.replica.experiment import (
    ReplicaArm,
    ReplicaRunResult,
    replica_storm,
    run_replica,
    run_replica_arm,
)
from repro.replica.group import ReplicaGroup
from repro.replica.messages import ReplBatch, ReplOp, namespace_op
from repro.replica.replicator import REPLICATED_NAMESPACE, Replicator

__all__ = [
    "REPLICATED_NAMESPACE",
    "ReplBatch",
    "ReplOp",
    "ReplicaArm",
    "ReplicaGroup",
    "ReplicaRunResult",
    "Replicator",
    "namespace_op",
    "replica_storm",
    "run_replica",
    "run_replica_arm",
]
