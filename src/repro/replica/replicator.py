"""The replication engine: ship committed batches, wait for quorum acks.

Every member of a :class:`~repro.replica.group.ReplicaGroup` owns a
``Replicator``; only the acting primary's is *active*.  The commit path:

1. a write path (gather/standard) or a namespace action routine commits
   locally, then calls :meth:`replicate` with the batch's ops — under the
   vnode lock, so sequence numbers follow same-file commit order;
2. the batch is stamped with the next group sequence number, retained in
   the member's log, and enqueued to one FIFO session per live peer —
   one batch in flight per peer, retransmitting until acked, so every
   peer applies a *gapless prefix* of the sequence order;
3. the caller yields the returned quorum event: it fires once ``quorum``
   backups have acked stable storage (immediately when the group has no
   live peers — K=0 degenerates to the paper's single-server contract);
4. the parked NFS replies are released.

A backup's :meth:`handle_replicate` runs as a normal server action
routine: it replays the ops against its own UFS (data delayed, then one
syncdata+fsync per touched file — mirroring the primary's gathered
flush), primes its duplicate-request cache with each op's original
(client, xid) → reply binding, and acks only after its own storage is
stable.  Promotion calls :meth:`activate`, which replays the retained
log to the surviving peers (resync) — the idempotent ``seq`` guard makes
the replay safe and brings lagging peers up to the new primary's prefix.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.fs.ufs import FsError
from repro.nfs.protocol import (
    PROC_CREATE,
    PROC_MIGRATE_PREPARE,
    PROC_REMOVE,
    PROC_RENAME,
    PROC_REPLICATE,
    PROC_SETATTR,
    PROC_SYMLINK,
    PROC_WRITE,
    Fattr,
)
from repro.obs import registry_for
from repro.replica.messages import ReplBatch, ReplOp, namespace_op
from repro.rpc.client import RpcClient
from repro.rpc.messages import (
    CLASS_HEAVY,
    RPC_HEADER_BYTES,
    RpcCall,
    RpcReply,
)
from repro.sim import Event, Interrupt, Store

__all__ = ["Replicator", "REPLICATED_NAMESPACE"]

#: Namespace procs a primary forwards to its backups (the nonidempotent
#: set minus WRITE, which rides the write paths' batch hook).
REPLICATED_NAMESPACE = frozenset(
    (PROC_CREATE, PROC_REMOVE, PROC_SYMLINK, PROC_RENAME, PROC_SETATTR)
)


class _Pending:
    """One batch's quorum bookkeeping, shared across peer sessions."""

    __slots__ = ("batch", "needed", "acks", "event")

    def __init__(self, batch: ReplBatch, needed: int, event: Optional[Event]) -> None:
        self.batch = batch
        self.needed = needed
        self.acks = 0
        self.event = event


class Replicator:
    """One group member's replication engine (primary or backup role)."""

    def __init__(self, server, group, quorum: int, segment) -> None:
        self.server = server
        self.group = group
        self.env = server.env
        self.quorum = quorum
        #: Replication traffic rides its own endpoint so a promotion can
        #: cut a dead primary's replication plane off the wire along with
        #: its client-facing host.
        self.endpoint_host = f"{server.host}.repl"
        endpoint = segment.attach(self.endpoint_host)
        self.rpc = RpcClient(self.env, endpoint, server.host)
        #: Whether this member is the group's acting primary.
        self.active = False
        #: Highest batch sequence number applied to the local UFS.
        self.applied_seq = 0
        self._next_seq = 1
        #: Every batch this member issued or applied, in sequence order —
        #: replayed at promotion to resync lagging peers.
        self._log: List[ReplBatch] = []
        self._queues: Dict[str, Store] = {}
        self._sessions: Dict[str, object] = {}
        self._pending: List[_Pending] = []
        self.peers: List[str] = []
        metrics = registry_for(self.env)
        prefix = f"{server.host}.replica"
        self.batches = metrics.counter(f"{prefix}.batches")
        self.ops = metrics.counter(f"{prefix}.ops")
        self.acks = metrics.counter(f"{prefix}.acks")
        self.resyncs = metrics.counter(f"{prefix}.resyncs")
        #: Commit-path stall waiting for quorum (the replication cost).
        self.wait = metrics.tally(f"{prefix}.wait")
        server.replicator = self
        server._actions[PROC_REPLICATE] = self.handle_replicate

    # -- primary role ----------------------------------------------------------

    def activate(self, resync: bool = False) -> None:
        """Become the acting primary's engine.

        Picks up the surviving peers, restarts sequence numbering from the
        local applied prefix, and (on promotion) replays the retained log
        so every peer converges on this member's prefix before new client
        batches extend it.
        """
        self.active = True
        self._next_seq = self.applied_seq + 1
        # Peers are addressed by their *main* host: REPLICATE arrives on
        # the member's NFS endpoint and dispatches like any other proc.
        self.peers = [
            member.host
            for member in self.group.surviving()
            if member is not self.server
        ]
        for host in self.peers:
            if host not in self._queues:
                self._queues[host] = Store(self.env)
            if host not in self._sessions:
                self._sessions[host] = self.env.process(
                    self._session(host),
                    name=f"repl:{self.server.host}->{host}",
                )
        if resync:
            self.resyncs.add(1)
            # Promotion is a new server incarnation for clients: any
            # unstable data they wrote to the old primary never reached
            # this member (only COMMITted pieces replicate), so the boot
            # verifier must change to force their replay.  Jump past
            # every verifier the group has ever handed out — a crashed
            # ex-primary's +1-per-reboot walk can never collide with an
            # acting primary's history.
            self.server.boot_verifier = (
                max(member.boot_verifier for member in self.group.members) + 1
            )
            for batch in self._log:
                pending = _Pending(batch, needed=0, event=None)
                for host in self.peers:
                    self._queues[host].put(pending)

    def replicate(self, ops: List[ReplOp], stability: str = "stable") -> Event:
        """Ship one committed batch; returns the quorum event.

        The event fires once ``min(quorum, live peers)`` backups ack
        stable storage — immediately when that is zero (K=0, or every
        backup has failed: the group degenerates to a single server and
        the local commit is the whole promise).
        """
        seq = self._next_seq
        self._next_seq += 1
        # The primary itself applied the batch at commit time.
        self.applied_seq = seq
        batch = ReplBatch(seq=seq, ops=list(ops), stability=stability)
        self._log.append(batch)
        self.batches.add(1)
        self.ops.add(len(ops))
        event = Event(self.env)
        needed = min(self.quorum, len(self.peers))
        if needed == 0:
            event.succeed()
            return event
        pending = _Pending(batch, needed=needed, event=event)
        self._pending.append(pending)
        for host in self.peers:
            self._queues[host].put(pending)
        return event

    def commit_wait(self, ops: List[ReplOp], stability: str = "stable") -> Generator:
        """Replicate and block until quorum (driven by a write path)."""
        started = self.env.now
        done = self.replicate(ops, stability=stability)
        if not done.triggered:
            yield done
        self.wait.observe(self.env.now - started)

    def write_op(self, vnode, offset: int, data: bytes, call, fattr: Fattr) -> ReplOp:
        """The ReplOp for one stable WRITE in a committed batch."""
        return ReplOp(
            proc=PROC_WRITE,
            ino=vnode.ino,
            generation=vnode.inode.generation,
            offset=offset,
            data=data,
            client=call.client if call is not None else "",
            xid=call.xid if call is not None else 0,
            reply=(
                RpcReply(xid=call.xid, status="ok", result=fattr)
                if call is not None
                else None
            ),
        )

    def replicates(self, proc: str) -> bool:
        return proc in REPLICATED_NAMESPACE

    def replicate_namespace(
        self, handle, proc: str, result, size: int
    ) -> Generator:
        """Forward one committed namespace mutation and wait for quorum.

        Runs between the action routine and its reply, so the reply the
        client sees is released only after the mutation is quorum-stable.
        """
        call = handle.call
        op = namespace_op(proc, call.args, result)
        if op is None:
            return
        op.client = call.client
        op.xid = call.xid
        op.reply = RpcReply(xid=call.xid, status="ok", result=result, size=size)
        yield from self.commit_wait([op])

    def _session(self, host: str) -> Generator:
        """FIFO shipping to one peer: one batch in flight, hard-retry.

        Retransmissions ride the RPC layer (the backup's seq guard makes
        duplicates idempotent); FIFO + one-in-flight means the peer's
        applied set is always a gapless prefix of the issue order — the
        invariant behind freshest-backup promotion.
        """
        queue = self._queues[host]
        try:
            while True:
                pending = yield queue.get()
                reply = yield from self.rpc.call(
                    PROC_REPLICATE,
                    pending.batch,
                    size=pending.batch.wire_size(),
                    weight=CLASS_HEAVY,
                    server=host,
                )
                if not reply.ok:
                    continue  # peer refused the batch; divergence checks will tell
                self.acks.add(1)
                pending.acks += 1
                if (
                    pending.event is not None
                    and not pending.event.triggered
                    and pending.acks >= pending.needed
                ):
                    pending.event.succeed()
        except Interrupt:
            return

    def halt(self) -> None:
        """Crash path: replication state is volatile and dies in place.

        Queued batches vanish, sessions stop, and every unreached quorum
        fires — releasing any nfsd blocked on it so vnode locks free up;
        the replies it would send are dropped anyway by the server's
        crash-incarnation guard.
        """
        self.active = False
        for queue in self._queues.values():
            queue.items.clear()
        for process in self._sessions.values():
            if process.is_alive and process.target is not None:
                process.interrupt("replicator halt")
        self._sessions.clear()
        for pending in self._pending:
            if pending.event is not None and not pending.event.triggered:
                pending.event.succeed()
        self._pending.clear()

    # -- backup role -----------------------------------------------------------

    def handle_replicate(self, batch: ReplBatch) -> Generator:
        """Apply one replicated batch (server action routine).

        Acks carry this member's applied sequence number; a duplicate
        delivery (RPC retransmission or a promotion-time resync replay)
        is acked without re-execution.
        """
        if batch.seq <= self.applied_seq:
            return self.applied_seq, RPC_HEADER_BYTES
        yield from self._apply(batch)
        self.applied_seq = batch.seq
        self._log.append(batch)
        return self.applied_seq, RPC_HEADER_BYTES

    def _apply(self, batch: ReplBatch) -> Generator:
        """Replay a batch against the local UFS, mirroring one gathered
        flush: data lands delayed, then one syncdata+fsync per file."""
        ufs = self.server.ufs
        touched: Dict[int, List[int]] = {}
        for op in batch.ops:
            try:
                yield from self._apply_op(ufs, op, touched)
            except FsError:
                # A structurally impossible replay (e.g. the file vanished
                # from a gap we never saw) — the divergence check surfaces
                # it; keep applying the rest of the batch.
                continue
            if op.reply is not None and op.client:
                self.server.svc.dup_cache.record_done(
                    RpcCall(
                        xid=op.xid,
                        proc=op.proc,
                        args=None,
                        size=max(1, op.wire_bytes()),
                        client=op.client,
                    ),
                    op.reply,
                )
        for ino, (low, high) in touched.items():
            inode = ufs.inodes.get(ino)
            if inode is None:
                continue  # removed later in the same batch
            yield from ufs.sync_data(inode, low, high)
            if inode.inode_dirty or inode.indirect_dirty:
                yield from ufs.fsync(inode, metadata_only=True)

    def _apply_op(self, ufs, op: ReplOp, touched: Dict[int, List[int]]) -> Generator:
        from repro.fs.vfs import IO_DELAYDATA

        if op.proc == PROC_WRITE:
            inode = ufs.get_inode(op.ino)
            yield from ufs.write(inode, op.offset, op.data, IO_DELAYDATA)
            end = op.offset + len(op.data)
            extent = touched.get(op.ino)
            if extent is None:
                touched[op.ino] = [op.offset, end]
            else:
                extent[0] = min(extent[0], op.offset)
                extent[1] = max(extent[1], end)
        elif op.proc in (PROC_CREATE, PROC_SYMLINK):
            directory = ufs.get_inode(op.dir_ino)
            if op.name in directory.entries:
                return
            if op.proc == PROC_SYMLINK:
                inode = yield from ufs.symlink(
                    directory, op.name, op.extra["target"], ino=op.ino
                )
            else:
                inode = yield from ufs.create(directory, op.name, ino=op.ino)
            inode.generation = op.generation
        elif op.proc == PROC_MIGRATE_PREPARE:
            # A migrated-in file (repro.tiering): adopt the foreign ino
            # without disturbing this shard's allocation counter, so a
            # promoted backup can still allocate collision-free handles.
            directory = ufs.get_inode(op.dir_ino)
            if op.name in directory.entries:
                return
            yield from ufs.adopt_inode(directory, op.name, op.ino, op.generation)
        elif op.proc == PROC_REMOVE:
            directory = ufs.get_inode(op.dir_ino)
            target = directory.entries.get(op.name)
            if target is None:
                return
            yield from ufs.remove(directory, op.name)
            self.server.vnodes.forget(target)
        elif op.proc == PROC_RENAME:
            src = ufs.get_inode(op.dir_ino)
            if op.name not in src.entries:
                return
            dst = ufs.get_inode(op.extra["dst_dir_ino"])
            yield from ufs.rename(src, op.name, dst, op.extra["dst_name"])
        elif op.proc == PROC_SETATTR:
            inode = ufs.get_inode(op.ino)
            if op.extra.get("mtime") is not None:
                inode.mtime = op.extra["mtime"]
            if op.extra.get("size") is not None:
                inode.size = min(inode.size, op.extra["size"])
            ufs._mark_meta_dirty(inode)
            yield from ufs._write_inode_sync(inode)
