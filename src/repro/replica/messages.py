"""Wire format of the internal ``REPLICATE`` procedure.

A primary commits a batch locally (one gathered flush, one standard-path
write, or one namespace mutation), then ships the whole batch to each
backup as a single :class:`ReplBatch` — the replication analogue of the
paper's gathered metadata update: one flush ⇒ one replication message,
so the replicated-commit round trip amortizes across the batch exactly
as the fsync did.

Each :class:`ReplOp` carries everything a backup needs to replay the
mutation *deterministically* — explicit inode numbers (the backup must
agree with the primary on file handles) — plus the (client, xid, reply)
triple of the originating NFS request, so the backup can prime its own
duplicate-request cache: a client retransmitting into a promoted backup
gets the cached reply, never a re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.rpc.messages import RPC_HEADER_BYTES, RpcReply

__all__ = ["ReplOp", "ReplBatch", "namespace_op"]

#: Fixed per-op framing overhead (proc tag, ino, offset, lengths).
OP_OVERHEAD_BYTES = 32


@dataclass
class ReplOp:
    """One primary-side mutation, replayed verbatim on a backup."""

    proc: str
    #: Target inode (writes, setattr) or the inode the primary allocated
    #: (create/symlink — the backup pins the same number).
    ino: int = 0
    generation: int = 0
    offset: int = 0
    data: bytes = b""
    #: Namespace ops: the directory and entry name involved.
    dir_ino: int = 0
    name: str = ""
    #: Proc-specific extras (symlink target, rename destination, setattr
    #: fields).
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Dup-cache priming: the identity of the originating NFS request and
    #: the exact reply the primary released for it.
    client: str = ""
    xid: int = 0
    reply: Optional[RpcReply] = None

    def wire_bytes(self) -> int:
        return OP_OVERHEAD_BYTES + len(self.data) + len(self.name)


@dataclass
class ReplBatch:
    """One replication message: every op of one primary commit, in the
    order the primary applied them, stamped with the primary's sequence
    number (gapless per group — backups apply prefixes)."""

    seq: int
    ops: List[ReplOp]
    #: Stability class of the batch's ops: "stable" (the op was committed
    #: stable-before-reply on the primary) or "commit" (async-commit
    #: pieces made stable by a COMMIT or memory-pressure flush — the
    #: client's durability promise binds at the COMMIT reply, which is
    #: parked on this batch's quorum).
    stability: str = "stable"

    def wire_size(self) -> int:
        return RPC_HEADER_BYTES + sum(op.wire_bytes() for op in self.ops)


def namespace_op(proc: str, args, result) -> Optional[ReplOp]:
    """Build the ReplOp for one committed namespace mutation.

    ``args``/``result`` are the NFS action routine's inputs and output;
    returns None for procs that need no replication (e.g. a CREATE that
    degenerated to a lookup is still replicated — the backup's guard makes
    replay idempotent)."""
    from repro.nfs.protocol import (
        PROC_CREATE,
        PROC_REMOVE,
        PROC_RENAME,
        PROC_SETATTR,
        PROC_SYMLINK,
    )

    if proc in (PROC_CREATE, PROC_SYMLINK):
        fhandle, _fattr = result
        ino, generation = fhandle
        extra = {"target": args.target} if proc == PROC_SYMLINK else {}
        return ReplOp(
            proc=proc,
            ino=ino,
            generation=generation,
            dir_ino=args.dir_fhandle[0],
            name=args.name,
            extra=extra,
        )
    if proc == PROC_REMOVE:
        return ReplOp(proc=proc, dir_ino=args.dir_fhandle[0], name=args.name)
    if proc == PROC_RENAME:
        return ReplOp(
            proc=proc,
            dir_ino=args.src_dir_fhandle[0],
            name=args.src_name,
            extra={
                "dst_dir_ino": args.dst_dir_fhandle[0],
                "dst_name": args.dst_name,
            },
        )
    if proc == PROC_SETATTR:
        return ReplOp(
            proc=proc,
            ino=args.fhandle[0],
            generation=args.fhandle[1],
            extra={"size": args.size, "mtime": args.mtime},
        )
    return None
