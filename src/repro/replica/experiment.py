"""The replication experiment: what does K-safety cost, and does it hold?

``repro replica`` runs the same seeded sharded write workload once per
replication factor (arms K=0, 1, 2 by default) under a crash-and-promote
storm: every storm event kills a shard's *acting primary* mid-workload
and (for K>0) promotes its freshest backup.  Each arm reports

* client-observed write latency (p50/p99) and aggregate throughput —
  the replicated-commit round trip is pure added commit latency, so the
  K=0 arm is the paper's baseline and the deltas are the cost of safety;
* acked-write survival: the group-level oracle contract (no acked write
  missing from the surviving replica set) checked at every crash and at
  the end, plus the post-quiesce divergence check (surviving replica
  images byte-identical);
* promotion bookkeeping (crashes, promotions, who is acting primary).

Everything is seeded; ``--json`` output is byte-identical across reruns.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.experiment import (
    CLUSTER_THINK_TIME,
    _client_files,
    _client_workload,
)
from repro.cluster.failover import FailoverController, ShardCrash
from repro.cluster.fleet import Cluster, ClusterConfig
from repro.cluster.oracle import ClusterOracle
from repro.obs import registry_for
from repro.payload import PAYLOAD_FULL
from repro.sim import AllOf

__all__ = ["ReplicaRunResult", "replica_storm", "run_replica", "run_replica_arm"]

REPLICA_SCHEMA = "repro.replica/1"

#: First storm crash lands after the workload has acked some writes...
STORM_START = 0.04
#: ...and subsequent crashes are spaced widely enough that promotion and
#: client rerouting settle between events.
STORM_SPACING = 0.05


def replica_storm(
    servers: int, crashes: int, promote: bool
) -> List[ShardCrash]:
    """The seeded crash plan: ``crashes`` primary kills, round-robin over
    shards.  With ``promote`` each kill fails over to the freshest backup;
    without (the K=0 baseline) the shard crash-reboots in place, the
    paper's fast-restart assumption."""
    return [
        ShardCrash(
            at=STORM_START + index * STORM_SPACING,
            shard=index % servers,
            promote=promote,
        )
        for index in range(crashes)
    ]


@dataclass
class ReplicaArm:
    """One replication factor's measured run."""

    replicas: int
    quorum: int
    elapsed: float
    total_bytes: int
    aggregate_kb_per_sec: float
    write_latency_ms: dict
    acked_writes: int
    crashes: int
    promotions: int
    replication: dict
    acting_primaries: dict
    oracle_checks: int
    stable_violations: int
    faults: List[dict] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and self.stable_violations == 0

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "quorum": self.quorum,
            "elapsed": round(self.elapsed, 9),
            "total_bytes": self.total_bytes,
            "aggregate_kb_per_sec": round(self.aggregate_kb_per_sec, 2),
            "write_latency_ms": self.write_latency_ms,
            "acked_writes": self.acked_writes,
            "crashes": self.crashes,
            "promotions": self.promotions,
            "replication": self.replication,
            "acting_primaries": self.acting_primaries,
            "oracle_checks": self.oracle_checks,
            "stable_violations": self.stable_violations,
            "clean": self.clean,
            "faults": self.faults,
            "violations": list(self.violations),
        }


def run_replica_arm(
    config: ClusterConfig,
    clients: int = 6,
    files_per_client: int = 2,
    file_kb: int = 64,
    think_time: float = CLUSTER_THINK_TIME,
    crashes: Optional[Sequence[ShardCrash]] = None,
    payload: str = PAYLOAD_FULL,
) -> ReplicaArm:
    """One arm: the sharded write workload at one replication factor."""
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    cluster = Cluster(config)
    oracle = ClusterOracle(cluster)
    env = cluster.env
    registry = registry_for(env)
    # Pre-register the clients' write-latency tallies *with samples*
    # before the clients build (registration is get-or-create), so
    # percentiles are computable without touching the client code.
    tallies = [
        registry.tally(f"nfs.client-{index}.write_latency", keep_samples=True)
        for index in range(clients)
    ]
    writers = []
    nbytes = file_kb * 1024
    for _ in range(clients):
        client = cluster.add_client()
        oracle.attach(client)
        host = client.rpc.endpoint.host
        writers.append(
            env.process(
                _client_workload(
                    env,
                    client,
                    _client_files(host, files_per_client),
                    nbytes,
                    think_time,
                    payload,
                ),
                name=f"workload:{host}",
            )
        )
    controller = None
    if crashes:
        controller = FailoverController(cluster, crashes, oracle=oracle).start()
    env.run(until=AllOf(env, writers))
    elapsed = max(proc.value for proc in writers)
    env.run()  # drain replication sessions, NVRAM destage, watchdogs
    oracle.check("final")
    oracle.check_divergence("quiesce")
    total_bytes = clients * files_per_client * nbytes
    samples: List[float] = []
    for tally in tallies:
        samples.extend(tally._samples or [])
    samples.sort()

    def percentile(q: float) -> float:
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(q * len(samples)))
        return samples[index]

    replication = {"batches": 0, "ops": 0, "acks": 0, "resyncs": 0}
    waits: List[float] = []
    for group in cluster.groups:
        for member in group.members:
            replicator = member.replicator
            if replicator is None:
                continue
            replication["batches"] += int(replicator.batches.value)
            replication["ops"] += int(replicator.ops.value)
            replication["acks"] += int(replicator.acks.value)
            replication["resyncs"] += int(replicator.resyncs.value)
            if replicator.wait.count:
                waits.append(replicator.wait.mean)
    replication["mean_commit_wait_ms"] = (
        round(sum(waits) / len(waits) * 1000.0, 4) if waits else 0.0
    )
    return ReplicaArm(
        replicas=config.replicas,
        quorum=min(config.quorum, config.replicas) if config.replicas else 0,
        elapsed=elapsed,
        total_bytes=total_bytes,
        aggregate_kb_per_sec=total_bytes / elapsed / 1024.0,
        write_latency_ms={
            "mean": round(
                (sum(samples) / len(samples) * 1000.0) if samples else 0.0, 4
            ),
            "p50": round(percentile(0.50) * 1000.0, 4),
            "p99": round(percentile(0.99) * 1000.0, 4),
        },
        acked_writes=oracle.acked_writes,
        crashes=controller.crashes if controller else 0,
        promotions=controller.promotions if controller else 0,
        replication=replication,
        acting_primaries={
            group.logical_host: group.primary.host for group in cluster.groups
        },
        oracle_checks=oracle.checks,
        stable_violations=cluster.stable_violations_total(),
        faults=controller.log if controller else [],
        violations=oracle.violations,
    )


@dataclass
class ReplicaRunResult:
    """The K-sweep: replication cost vs acked-write survival."""

    servers: int
    clients: int
    files_per_client: int
    file_kb: int
    seed: int
    write_path: str
    quorum: int
    storm_crashes: int
    arms: List[ReplicaArm]

    @property
    def clean(self) -> bool:
        return all(arm.clean for arm in self.arms)

    def comparison(self) -> List[dict]:
        """Each K>0 arm's latency/throughput cost relative to K=0."""
        baseline = next((arm for arm in self.arms if arm.replicas == 0), None)
        if baseline is None:
            return []
        out = []
        base_p99 = baseline.write_latency_ms["p99"]
        base_throughput = baseline.aggregate_kb_per_sec
        for arm in self.arms:
            if arm.replicas == 0:
                continue
            out.append(
                {
                    "replicas": arm.replicas,
                    "p99_write_latency_vs_k0": (
                        round(arm.write_latency_ms["p99"] / base_p99, 4)
                        if base_p99
                        else None
                    ),
                    "throughput_vs_k0": (
                        round(arm.aggregate_kb_per_sec / base_throughput, 4)
                        if base_throughput
                        else None
                    ),
                }
            )
        return out

    def to_dict(self) -> dict:
        return {
            "schema": REPLICA_SCHEMA,
            "servers": self.servers,
            "clients": self.clients,
            "files_per_client": self.files_per_client,
            "file_kb": self.file_kb,
            "seed": self.seed,
            "write_path": self.write_path,
            "quorum": self.quorum,
            "storm_crashes": self.storm_crashes,
            "arms": [arm.to_dict() for arm in self.arms],
            "comparison": self.comparison(),
            "clean": self.clean,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _run_replica(
    base: ClusterConfig,
    replica_counts: Sequence[int] = (0, 1, 2),
    clients: int = 6,
    files_per_client: int = 2,
    file_kb: int = 64,
    think_time: float = CLUSTER_THINK_TIME,
    storm_crashes: int = 3,
    progress=None,
    payload: str = PAYLOAD_FULL,
) -> ReplicaRunResult:
    """Sweep the replication factor under the crash-and-promote storm.

    Each arm is a fresh, independently seeded cluster; the storm is the
    same shape in every arm (identical times and shard order), differing
    only in whether a backup exists to promote.
    """
    arms: List[ReplicaArm] = []
    for replicas in replica_counts:
        config = base.variant(replicas=replicas)
        crashes = replica_storm(
            config.servers, storm_crashes, promote=replicas > 0
        )
        arm = run_replica_arm(
            config,
            clients=clients,
            files_per_client=files_per_client,
            file_kb=file_kb,
            think_time=think_time,
            crashes=crashes,
            payload=payload,
        )
        arms.append(arm)
        if progress is not None:
            progress(arm)
    return ReplicaRunResult(
        servers=base.servers,
        clients=clients,
        files_per_client=files_per_client,
        file_kb=file_kb,
        seed=base.seed,
        write_path=str(base.write_path),
        quorum=base.quorum,
        storm_crashes=storm_crashes,
        arms=arms,
    )


def run_replica(*args, **kwargs) -> ReplicaRunResult:
    """Deprecated entry point; use :func:`repro.experiments.run` with
    ``ExperimentSpec(kind="replica", ...)``."""
    warnings.warn(
        "run_replica() is deprecated; use repro.experiments.run("
        "ExperimentSpec(kind='replica', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_replica(*args, **kwargs)
