"""Heterogeneous tiers, placement policy, and crash-safe live migration."""

from repro.tiering.engine import (
    MigrationEngine,
    MigrationPlan,
    ShardMigrator,
)
from repro.tiering.placement import (
    POLICY_NAMES,
    HashPlacement,
    HotFirstPlacement,
    LeastLoadPlacement,
    MostFreePlacement,
    PlacementPolicy,
    make_policy,
)
from repro.tiering.experiment import (
    TieringArm,
    TieringConfig,
    TieringRunResult,
    run_tiering,
)
from repro.tiering.tiers import DEFAULT_FS_BYTES, TierConfig

__all__ = [
    "TierConfig",
    "DEFAULT_FS_BYTES",
    "PlacementPolicy",
    "HashPlacement",
    "MostFreePlacement",
    "LeastLoadPlacement",
    "HotFirstPlacement",
    "make_policy",
    "POLICY_NAMES",
    "ShardMigrator",
    "MigrationEngine",
    "MigrationPlan",
    "TieringConfig",
    "TieringArm",
    "TieringRunResult",
    "run_tiering",
]
