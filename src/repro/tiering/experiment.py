"""The tiering experiment: placement policy sweep + migration storm.

``repro tiering`` answers two questions about a heterogeneous fleet:

* **Does the hardware mix pay?**  The same Zipf-hot multi-tenant append
  workload runs once against an all-cold fleet (no NVRAM anywhere, the
  baseline) and once per placement policy against a mixed fleet whose
  hot tier carries Presto boards.  Each arm reports client-observed
  write latency (p50/p99), throughput, and where the files landed
  (hot vs cold, plus capacity spills for ``hot-first``).  The verdict —
  ``hot_beats_cold`` — is whether the mixed fleet under its steering
  policy beats the all-cold baseline on p99 write latency.

* **Is live migration crash-safe?**  The storm arm replays the workload
  on the mixed fleet with replication enabled while a
  :class:`~repro.tiering.engine.MigrationEngine` demotes the tenants'
  hottest files hot→cold mid-traffic, and a
  :class:`~repro.cluster.failover.FailoverController` injects shard
  crashes, a network partition, and replica promotions timed to land
  mid-copy and around cutover.  The migration contract (every acked
  range satisfiable at exactly one authoritative location) is checked
  at every fault event and at quiesce via the oracle's extra-check
  hook.

Everything is seeded; ``--json`` output is byte-identical across reruns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.failover import FailoverController, ShardCrash
from repro.cluster.fleet import Cluster, ClusterConfig
from repro.cluster.oracle import ClusterOracle
from repro.obs import registry_for
from repro.sim import AllOf
from repro.tiering.engine import MigrationEngine, MigrationPlan
from repro.tiering.placement import POLICY_NAMES, make_policy
from repro.tiering.tiers import TierConfig
from repro.workload.zipf import tenant_file_name, zipf_tenant

__all__ = ["TieringConfig", "TieringArm", "TieringRunResult", "run_tiering"]

TIERING_SCHEMA = "repro.tiering/1"

#: First migration fires once every tenant has created its files and
#: acked some appends...
STORM_START = 0.03
#: ...and subsequent migrations are spaced so each one's copy/delta
#: window is underway when its fault lands.
STORM_SPACING = 0.04
#: Fault offset into each migration's copy window.
FAULT_OFFSET = 0.008


@dataclass
class TieringConfig:
    """One tiering run: workload shape, fleet mix, policies, storm."""

    seed: int = 0
    tenants: int = 6
    files_per_tenant: int = 4
    ops_per_tenant: int = 48
    chunk_kb: int = 4
    #: Zipf skew per tenant: 0 = uniform, higher = hotter hot spot.
    skew: float = 1.1
    think_time: float = 0.002
    hot_shards: int = 2
    cold_shards: int = 2
    #: Per-hot-shard Presto NVRAM capacity.  Sized so the steered hot
    #: working set fits — an undersized board destages on the critical
    #: path and the tier's latency advantage evaporates.
    hot_presto_kb: int = 2048
    #: Ring weight of a hot shard relative to a cold one (capacity-
    #: weighted vnodes).
    hot_weight: float = 2.0
    policies: Sequence[str] = POLICY_NAMES
    #: Hot→cold demotions launched during the storm arm.
    storm_migrations: int = 3
    #: Replication factor for the storm arm (promotions need K >= 1).
    storm_replicas: int = 1

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"need at least one tenant, got {self.tenants}")
        if self.files_per_tenant < 1:
            raise ValueError(
                f"need at least one file per tenant, got {self.files_per_tenant}"
            )
        if self.hot_shards < 1 or self.cold_shards < 1:
            raise ValueError(
                f"need at least one shard per tier, got "
                f"{self.hot_shards} hot / {self.cold_shards} cold"
            )
        for name in self.policies:
            if name not in POLICY_NAMES:
                raise ValueError(
                    f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
                )
        if self.storm_migrations < 1:
            raise ValueError(
                f"need at least one storm migration, got {self.storm_migrations}"
            )
        if self.storm_replicas < 1:
            raise ValueError(
                f"storm promotions need replicas >= 1, got {self.storm_replicas}"
            )

    def mixed_tiers(self) -> List[TierConfig]:
        return [
            TierConfig(
                name="hot",
                shards=self.hot_shards,
                presto_bytes=self.hot_presto_kb * 1024,
                weight=self.hot_weight,
            ),
            TierConfig(name="cold", shards=self.cold_shards),
        ]

    def cold_tiers(self) -> List[TierConfig]:
        return [TierConfig(name="cold", shards=self.hot_shards + self.cold_shards)]


@dataclass
class TieringArm:
    """One fleet × policy cell of the sweep."""

    fleet: str
    policy: str
    elapsed: float
    total_bytes: int
    aggregate_kb_per_sec: float
    write_latency_ms: dict
    acked_writes: int
    placement: dict
    oracle_checks: int
    stable_violations: int
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and self.stable_violations == 0

    def to_dict(self) -> dict:
        return {
            "fleet": self.fleet,
            "policy": self.policy,
            "elapsed": round(self.elapsed, 9),
            "total_bytes": self.total_bytes,
            "aggregate_kb_per_sec": round(self.aggregate_kb_per_sec, 2),
            "write_latency_ms": self.write_latency_ms,
            "acked_writes": self.acked_writes,
            "placement": self.placement,
            "oracle_checks": self.oracle_checks,
            "stable_violations": self.stable_violations,
            "clean": self.clean,
            "violations": list(self.violations),
        }


def _percentiles(samples: List[float]) -> dict:
    samples = sorted(samples)

    def at(q: float) -> float:
        if not samples:
            return 0.0
        return samples[min(len(samples) - 1, int(q * len(samples)))]

    return {
        "mean": round((sum(samples) / len(samples) * 1000.0) if samples else 0.0, 4),
        "p50": round(at(0.50) * 1000.0, 4),
        "p99": round(at(0.99) * 1000.0, 4),
    }


def _spawn_tenants(cluster: Cluster, oracle: ClusterOracle, config: TieringConfig):
    """Attach one client per tenant and start its Zipf writer; returns
    the writer processes (each resolves to its finish time) and the
    pre-registered latency tallies."""
    env = cluster.env
    registry = registry_for(env)
    tallies = [
        registry.tally(f"nfs.client-{tenant}.write_latency", keep_samples=True)
        for tenant in range(config.tenants)
    ]
    writers = []
    for tenant in range(config.tenants):
        client = cluster.add_client()
        oracle.attach(client)

        def tenant_proc(client=client, tenant=tenant):
            yield from zipf_tenant(
                env,
                client,
                tenant,
                files=config.files_per_tenant,
                ops=config.ops_per_tenant,
                chunk_bytes=config.chunk_kb * 1024,
                skew=config.skew,
                think_time=config.think_time,
                seed=config.seed,
            )
            return env.now

        writers.append(env.process(tenant_proc(), name=f"tenant-{tenant}"))
    return writers, tallies


def _placement_census(cluster: Cluster, config: TieringConfig, policy) -> dict:
    """Where did the files land?  Counts by tier, plus hot-first spills."""
    counts: dict = {}
    for tenant in range(config.tenants):
        for index in range(config.files_per_tenant):
            host = cluster.router.server_for_name(tenant_file_name(tenant, index))
            tier = cluster.tier_of.get(host, "default")
            counts[tier] = counts.get(tier, 0) + 1
    census = {"files_by_tier": dict(sorted(counts.items()))}
    if policy is not None and hasattr(policy, "spills"):
        census["spills"] = policy.spills
    return census


def _run_arm(
    config: TieringConfig,
    fleet: str,
    policy_name: str,
    cluster_config: ClusterConfig,
) -> TieringArm:
    cluster = Cluster(cluster_config)
    oracle = ClusterOracle(cluster)
    policy = make_policy(policy_name, cluster)
    if policy is not None:
        cluster.router.set_placement(policy)
    writers, tallies = _spawn_tenants(cluster, oracle, config)
    env = cluster.env
    env.run(until=AllOf(env, writers))
    elapsed = max(proc.value for proc in writers)
    env.run()  # drain NVRAM destage, replication, watchdogs
    oracle.check("final")
    oracle.check_divergence("quiesce")
    samples: List[float] = []
    for tally in tallies:
        samples.extend(tally._samples or [])
    total_bytes = config.tenants * config.ops_per_tenant * config.chunk_kb * 1024
    return TieringArm(
        fleet=fleet,
        policy=policy_name,
        elapsed=elapsed,
        total_bytes=total_bytes,
        aggregate_kb_per_sec=total_bytes / elapsed / 1024.0,
        write_latency_ms=_percentiles(samples),
        acked_writes=oracle.acked_writes,
        placement=_placement_census(cluster, config, policy),
        oracle_checks=oracle.checks,
        stable_violations=cluster.stable_violations_total(),
        violations=oracle.violations,
    )


def _storm_plans(config: TieringConfig) -> List[dict]:
    """The scripted demotions: each tenant's rank-0 (hottest) file, in
    tenant order, hot→cold round-robin.  Destinations are logical shard
    names (``server-<i>``); hot shards are built first so cold shards
    start at index ``hot_shards``."""
    plans = []
    for m in range(config.storm_migrations):
        tenant = m % config.tenants
        name = tenant_file_name(tenant, tenant % config.files_per_tenant)
        cold_index = config.hot_shards + (m % config.cold_shards)
        plans.append(
            {
                "at": STORM_START + m * STORM_SPACING,
                "name": name,
                "dest": f"server-{cold_index}",
                "dest_shard": cold_index,
            }
        )
    return plans


def _storm_crashes(config: TieringConfig, plans: List[dict]) -> List[ShardCrash]:
    """Faults timed to land mid-copy of each migration: a destination
    crash with promotion, a (likely-source) hot-shard crash with
    promotion, and a destination partition (crash + network outage)."""
    crashes = [
        ShardCrash(
            at=plans[0]["at"] + FAULT_OFFSET,
            shard=plans[0]["dest_shard"],
            promote=True,
        )
    ]
    if len(plans) > 1:
        crashes.append(
            ShardCrash(at=plans[1]["at"] + FAULT_OFFSET, shard=0, promote=True)
        )
    if len(plans) > 2:
        crashes.append(
            ShardCrash(
                at=plans[2]["at"] + FAULT_OFFSET,
                shard=plans[2]["dest_shard"],
                outage=0.05,
                redirect=True,
            )
        )
    return crashes


def _run_storm(config: TieringConfig) -> dict:
    cluster_config = ClusterConfig(
        tiers=config.mixed_tiers(),
        seed=config.seed,
        replicas=config.storm_replicas,
    )
    cluster = Cluster(cluster_config)
    oracle = ClusterOracle(cluster)
    policy = make_policy("hot-first", cluster)
    cluster.router.set_placement(policy)
    writers, tallies = _spawn_tenants(cluster, oracle, config)
    env = cluster.env
    engine = MigrationEngine(
        cluster,
        oracle=oracle,
        chunk_bytes=8192,
        park_threshold=4096,
        copy_pace=0.003,
    )
    plans = _storm_plans(config)
    engine.start(
        [MigrationPlan(at=p["at"], name=p["name"], dest=p["dest"]) for p in plans]
    )
    crashes = _storm_crashes(config, plans)
    controller = FailoverController(cluster, crashes, oracle=oracle).start()
    env.run(until=AllOf(env, writers))
    env.run()  # drain migrations, replication sessions, watchdogs
    oracle.check("final")
    oracle.check_divergence("quiesce")
    summary = engine.summary()
    migrations = []
    for record in summary["migrations"]:
        entry = dict(record)
        entry["start"] = round(entry["start"], 6)
        if "end" in entry:
            entry["end"] = round(entry["end"], 6)
        migrations.append(entry)
    return {
        "plans": [
            {"at": round(p["at"], 6), "name": p["name"], "dest": p["dest"]}
            for p in plans
        ],
        "migrations": migrations,
        "started": summary["started"],
        "completed": summary["completed"],
        "engine_aborts": summary["aborts"],
        "crashes": controller.crashes,
        "promotions": controller.promotions,
        "faults": controller.log,
        "acked_writes": oracle.acked_writes,
        "oracle_checks": oracle.checks,
        "stable_violations": cluster.stable_violations_total(),
        "violations": list(oracle.violations),
        "clean": oracle.clean and cluster.stable_violations_total() == 0,
    }


@dataclass
class TieringRunResult:
    """The sweep: policy arms, baseline, storm, and the verdict."""

    config: TieringConfig
    arms: List[TieringArm]
    storm: dict

    @property
    def baseline(self) -> Optional[TieringArm]:
        return next((arm for arm in self.arms if arm.fleet == "all-cold"), None)

    @property
    def hot_beats_cold(self) -> bool:
        """Does the mixed fleet beat all-cold on p99 write latency under
        at least the steering (``hot-first``) policy — or, if that policy
        wasn't swept, under any mixed arm?"""
        baseline = self.baseline
        if baseline is None:
            return False
        base_p99 = baseline.write_latency_ms["p99"]
        mixed = [arm for arm in self.arms if arm.fleet == "mixed"]
        steered = [arm for arm in mixed if arm.policy == "hot-first"] or mixed
        return any(arm.write_latency_ms["p99"] < base_p99 for arm in steered)

    @property
    def clean(self) -> bool:
        return all(arm.clean for arm in self.arms) and self.storm.get("clean", False)

    def comparison(self) -> List[dict]:
        baseline = self.baseline
        if baseline is None:
            return []
        base_p99 = baseline.write_latency_ms["p99"]
        out = []
        for arm in self.arms:
            if arm.fleet != "mixed":
                continue
            out.append(
                {
                    "policy": arm.policy,
                    "p99_write_latency_vs_all_cold": (
                        round(arm.write_latency_ms["p99"] / base_p99, 4)
                        if base_p99
                        else None
                    ),
                    "throughput_vs_all_cold": (
                        round(
                            arm.aggregate_kb_per_sec
                            / baseline.aggregate_kb_per_sec,
                            4,
                        )
                        if baseline.aggregate_kb_per_sec
                        else None
                    ),
                }
            )
        return out

    def to_dict(self) -> dict:
        config = self.config
        return {
            "schema": TIERING_SCHEMA,
            "seed": config.seed,
            "tenants": config.tenants,
            "files_per_tenant": config.files_per_tenant,
            "ops_per_tenant": config.ops_per_tenant,
            "chunk_kb": config.chunk_kb,
            "skew": config.skew,
            "hot_shards": config.hot_shards,
            "cold_shards": config.cold_shards,
            "hot_presto_kb": config.hot_presto_kb,
            "hot_weight": config.hot_weight,
            "policies": list(config.policies),
            "arms": [arm.to_dict() for arm in self.arms],
            "comparison": self.comparison(),
            "hot_beats_cold": self.hot_beats_cold,
            "storm": self.storm,
            "clean": self.clean,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable under a fixed seed) JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def run_tiering(
    config: TieringConfig, progress: Optional[Callable] = None
) -> TieringRunResult:
    """Run the full tiering experiment: all-cold baseline, one mixed-
    fleet arm per placement policy, then the migration storm."""
    arms = [
        _run_arm(
            config,
            "all-cold",
            "hash",
            ClusterConfig(tiers=config.cold_tiers(), seed=config.seed),
        )
    ]
    if progress is not None:
        progress(arms[-1])
    for policy_name in config.policies:
        arms.append(
            _run_arm(
                config,
                "mixed",
                policy_name,
                ClusterConfig(tiers=config.mixed_tiers(), seed=config.seed),
            )
        )
        if progress is not None:
            progress(arms[-1])
    storm = _run_storm(config)
    if progress is not None:
        progress(storm)
    return TieringRunResult(config=config, arms=arms, storm=storm)
