"""Storage tiers: heterogeneous shard hardware under one shard map.

The paper's economics (§2, §9) are per-server: an NVRAM board turns a
disk-bound write path into a memory-bound one at a hardware price.  At
fleet scale that price is paid per *shard*, so a real deployment mixes a
few NVRAM-rich "hot" shards with many disk-only "cold" ones.  A
:class:`TierConfig` describes one such hardware class; a cluster built
from tiers gets per-shard storage stacks and a capacity-weighted ring
(a big cold shard earns proportionally more ring arcs than a small hot
one), and the placement layer (:mod:`repro.tiering.placement`) decides
which tier newly created files land on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.disk.model import RZ26, DiskSpec

__all__ = ["TierConfig", "DEFAULT_FS_BYTES"]

#: The ServerConfig default volume size; tier weights are expressed
#: relative to it (weight = fs_bytes / DEFAULT_FS_BYTES unless pinned).
DEFAULT_FS_BYTES = 900 * 1024 * 1024


@dataclass(frozen=True)
class TierConfig:
    """One hardware class: how many shards, and what each is made of."""

    #: Tier name ("hot", "cold", ...), used by placement policies and
    #: reporting; must be unique within a cluster.
    name: str
    #: Number of shards built from this hardware class.
    shards: int
    #: Per-shard NVRAM accelerator capacity; None = disk-only.
    presto_bytes: Optional[int] = None
    disk_spec: DiskSpec = RZ26
    #: Spindles per shard.
    stripes: int = 1
    #: Per-shard volume size; None = the ServerConfig default (900 MB).
    fs_bytes: Optional[int] = None
    #: Ring weight override; None derives it from capacity
    #: (``fs_bytes / DEFAULT_FS_BYTES``), so a quarter-size shard owns a
    #: quarter of the nominal arcs.
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tier needs a name")
        if self.shards < 1:
            raise ValueError(f"tier {self.name!r} needs >= 1 shard")
        if self.stripes < 1:
            raise ValueError(f"tier {self.name!r}: stripes must be >= 1")
        if self.fs_bytes is not None and self.fs_bytes <= 0:
            raise ValueError(f"tier {self.name!r}: fs_bytes must be positive")
        if self.presto_bytes is not None and self.presto_bytes <= 0:
            raise ValueError(f"tier {self.name!r}: presto_bytes must be positive")
        if self.weight is not None and self.weight <= 0:
            raise ValueError(f"tier {self.name!r}: weight must be > 0")

    @property
    def effective_fs_bytes(self) -> int:
        return self.fs_bytes if self.fs_bytes is not None else DEFAULT_FS_BYTES

    @property
    def effective_weight(self) -> float:
        if self.weight is not None:
            return self.weight
        return self.effective_fs_bytes / DEFAULT_FS_BYTES

    @property
    def accelerated(self) -> bool:
        return self.presto_bytes is not None
