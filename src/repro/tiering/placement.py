"""Create-time placement policies over a heterogeneous fleet.

The shard map alone spreads *names* uniformly; a mixed hot/cold fleet
wants better.  A :class:`PlacementPolicy` is consulted by the
:class:`~repro.cluster.router.MountRouter` the first time a CREATE (or
SYMLINK) routes a new name, and its choice is pinned immediately — a
retransmitted or re-routed create can never land on a second shard just
because free space or load shifted between attempts.

Three policies beyond the pure hash:

* :class:`MostFreePlacement` ("mfs") — the classic mkfs-across-volumes
  heuristic: put the new file where the most free bytes are;
* :class:`LeastLoadPlacement` ("least-load") — put it where the fewest
  requests are waiting (free bytes break ties);
* :class:`HotFirstPlacement` ("hot-first") — prefer NVRAM-rich shards
  while they have headroom, spilling to the cold tier once a hot shard's
  free space drops under its reserve: the ``moveonenospc`` analog, so a
  small fast tier absorbs the write-hot files without ever returning
  ENOSPC for the bulk.

All decisions read *current simulated state* (free space via the
allocator, load via the socket inbox) through the cluster's own objects —
deterministic, RPC-free, exactly what a client computing placement from a
shared map would see in the BuffetFS design.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "PlacementPolicy",
    "HashPlacement",
    "MostFreePlacement",
    "LeastLoadPlacement",
    "HotFirstPlacement",
    "make_policy",
    "POLICY_NAMES",
]


class PlacementPolicy:
    """Base: choose the logical shard for a newly created name."""

    name = "hash"

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def place(self, name: str) -> str:
        raise NotImplementedError

    # -- shared state probes ---------------------------------------------------

    def _acting(self, logical: str):
        """The server object currently acting for a logical shard."""
        cluster = self.cluster
        return cluster.server_by_host(cluster.router.resolve(logical))

    def free_bytes(self, logical: str) -> int:
        server = self._acting(logical)
        config = server.config
        return (
            config.fs_bytes
            - server.ufs.allocator.allocated_count * config.block_size
        )

    def load_of(self, logical: str) -> int:
        """Requests sitting in the shard's socket buffer right now."""
        server = self._acting(logical)
        return len(server.endpoint.inbox)

    def candidates(self) -> List[str]:
        return self.cluster.shard_map.servers


class HashPlacement(PlacementPolicy):
    """The pure consistent-hash choice (the no-policy baseline)."""

    name = "hash"

    def place(self, name: str) -> str:
        return self.cluster.shard_map.server_for(name)


class MostFreePlacement(PlacementPolicy):
    """Most free bytes wins; host name breaks ties deterministically."""

    name = "mfs"

    def place(self, name: str) -> str:
        return min(
            self.candidates(), key=lambda host: (-self.free_bytes(host), host)
        )


class LeastLoadPlacement(PlacementPolicy):
    """Fewest queued requests wins; free space, then name, break ties."""

    name = "least-load"

    def place(self, name: str) -> str:
        return min(
            self.candidates(),
            key=lambda host: (self.load_of(host), -self.free_bytes(host), host),
        )


class HotFirstPlacement(PlacementPolicy):
    """Prefer the hot tier until a shard hits its free-space reserve.

    A hot shard is eligible while ``free_bytes > reserve_fraction *
    fs_bytes``; the most-free eligible hot shard wins.  With no eligible
    hot shard the file *spills* to the most-free shard of the remaining
    fleet — capacity pressure relocates placement instead of surfacing
    ENOSPC (the ``moveonenospc`` behaviour).
    """

    name = "hot-first"

    def __init__(self, cluster, hot_tier: str = "hot", reserve_fraction: float = 0.1) -> None:
        super().__init__(cluster)
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}"
            )
        self.hot_tier = hot_tier
        self.reserve_fraction = reserve_fraction
        self.spills = 0

    def _split(self) -> Tuple[List[str], List[str]]:
        tier_of = getattr(self.cluster, "tier_of", {})
        hot = [h for h in self.candidates() if tier_of.get(h) == self.hot_tier]
        cold = [h for h in self.candidates() if tier_of.get(h) != self.hot_tier]
        return hot, cold

    def place(self, name: str) -> str:
        hot, cold = self._split()
        eligible = []
        for host in hot:
            free = self.free_bytes(host)
            reserve = self.reserve_fraction * self._acting(host).config.fs_bytes
            if free > reserve:
                eligible.append((-free, host))
        if eligible:
            return min(eligible)[1]
        self.spills += 1
        pool = cold or hot
        return min(pool, key=lambda host: (-self.free_bytes(host), host))


#: Policy registry for sweeps and the CLI.
POLICY_NAMES = ("hash", "mfs", "least-load", "hot-first")


def make_policy(name: str, cluster, **kwargs) -> Optional[PlacementPolicy]:
    """Build a policy by registry name; "hash" returns None (pure map)."""
    if name == "hash":
        return None
    if name == "mfs":
        return MostFreePlacement(cluster)
    if name == "least-load":
        return LeastLoadPlacement(cluster)
    if name == "hot-first":
        return HotFirstPlacement(cluster, **kwargs)
    raise ValueError(f"unknown placement policy {name!r} (want one of {POLICY_NAMES})")
