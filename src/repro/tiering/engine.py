"""Crash-safe live migration: copy-then-cutover between shards.

The :class:`MigrationEngine` moves one file at a time from its current
shard to a destination shard while clients keep writing to it, without
ever losing an acked write.  The protocol is the classic three-act live
migration, adapted to the cluster's RPC-free router:

1. **Snapshot copy** — ``MIGRATE_BEGIN`` installs dirty-range tracking
   on the source (a :class:`ShardMigrator` hook on every UFS write),
   then the engine streams the file with ``MIGRATE_READ`` /
   ``MIGRATE_WRITE`` chunks.  Writes keep landing on the source; the
   tracker records what the snapshot missed.
2. **Delta drain** — ``MIGRATE_DELTA`` rotates one round of dirtied
   ranges (idempotent per round number); the engine re-copies them.
   Rounds repeat until a round converges under the park threshold.
3. **Park + cutover** — ``MIGRATE_PARK`` freezes the file *at the
   instant the handler runs*: from that instant the source abandons
   every mutating reply for the file, so no write can be acked under the
   old authority again.  The park reply carries the final delta bytes
   (peeked without yielding — nothing can interleave) and the file's
   recent dup-cache entries.  The engine ships both durably to the
   destination, then performs the cutover in a single no-yield block:
   verify the park fence still stands (the source session is volatile,
   so any crash or promotion since park voids it), atomically repoint
   the router's handle+name pins, and hand the file's oracle bookkeeping
   to the destination shard.  Finally ``MIGRATE_PURGE`` removes the
   source copy.

Any fault before cutover — source crash, destination crash, partition,
replica promotion — surfaces as an RPC timeout or a lost-session error;
the engine aborts (best-effort unpark + the next attempt re-prepares the
destination) and retries with backoff.  A fault *after* cutover needs no
undo: the destination already holds every acked byte durably, and only
the source purge is retried.  Clients never participate: their stranded
calls retransmit, and the per-attempt route hook lands the
retransmission on the new authority the moment the pins move.

Unstable (NFSv3) writes are safe across the repoint because the engine
copies even cached-but-uncommitted source bytes durably: a post-cutover
COMMIT either mismatches the destination's boot verifier (the client
replays its writes — ordinary replay machinery) or matches one whose
durable image already covers the range.  Either way the acked data
survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fs.inode import FileType
from repro.fs.ufs import ROOT_INO, FsError
from repro.fs.vfs import IO_DELAYDATA
from repro.nfs.protocol import (
    PROC_COMMIT,
    PROC_LOOKUP,
    PROC_MIGRATE_ABORT,
    PROC_MIGRATE_BEGIN,
    PROC_MIGRATE_DELTA,
    PROC_MIGRATE_PARK,
    PROC_MIGRATE_PREPARE,
    PROC_MIGRATE_PURGE,
    PROC_MIGRATE_READ,
    PROC_MIGRATE_WRITE,
    PROC_REMOVE,
    PROC_RENAME,
    PROC_SETATTR,
    PROC_WRITE,
    LookupArgs,
    WEIGHT_OF,
)
from repro.replica.messages import ReplOp
from repro.rpc.client import RpcClient, RpcTimeoutError
from repro.rpc.dupcache import DONE
from repro.rpc.messages import RPC_HEADER_BYTES, RpcCall

__all__ = [
    "ShardMigrator",
    "MigrationEngine",
    "MigrationPlan",
    "MigrateBeginArgs",
    "MigrateReadArgs",
    "MigrateDeltaArgs",
    "MigrateParkArgs",
    "MigrateAbortArgs",
    "MigratePrepareArgs",
    "MigrateWriteArgs",
    "MigratePurgeArgs",
]

#: Error status for a migration call whose source-side session is gone
#: (crash, promotion, or an abort the engine never saw).
ENOSESSION = "ENOSESSION"


@dataclass
class MigrateBeginArgs:
    fhandle: tuple
    name: str


@dataclass
class MigrateReadArgs:
    fhandle: tuple
    offset: int
    count: int


@dataclass
class MigrateDeltaArgs:
    fhandle: tuple
    round_no: int


@dataclass
class MigrateParkArgs:
    fhandle: tuple


@dataclass
class MigrateAbortArgs:
    fhandle: tuple


@dataclass
class MigratePrepareArgs:
    name: str
    ino: int
    generation: int


@dataclass
class MigrateWriteArgs:
    ino: int
    generation: int
    offset: int
    data: bytes
    #: Shipped dup-cache entries (client, xid, proc, reply) — only on the
    #: final "seal" call, so post-cutover retransmissions of recently
    #: answered writes/commits replay their replies from the new shard.
    dups: tuple = ()


@dataclass
class MigratePurgeArgs:
    name: str
    ino: int


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce (start, end) byte ranges; result sorted and disjoint."""
    if not ranges:
        return []
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


class _Session:
    """Source-side per-file migration state.  Volatile by design: a crash
    or promotion wipes it, which is exactly how the engine learns that
    the park fence (and the dirty tracking behind it) did not survive."""

    __slots__ = ("ino", "name", "dirty", "rounds", "parked")

    def __init__(self, ino: int, name: str) -> None:
        self.ino = ino
        self.name = name
        #: Byte ranges written since the last delta rotation.
        self.dirty: List[Tuple[int, int]] = []
        #: Rotated rounds, kept so a retransmitted DELTA is idempotent.
        self.rounds: Dict[int, List[Tuple[int, int]]] = {}
        self.parked = False


#: Procs whose replies must be abandoned for a parked/moved file, keyed
#: by how their args identify the target.
_FROZEN_BY_FHANDLE = frozenset((PROC_WRITE, PROC_COMMIT, PROC_SETATTR))
_FROZEN_BY_NAME = frozenset((PROC_REMOVE,))


class ShardMigrator:
    """Per-server migration agent: source and destination halves.

    Installed on every cluster server (primaries *and* backups, so a
    promoted backup can serve the destination role mid-migration).  Costs
    nothing when idle: the UFS write hook is a dict probe, and the
    dispatch/reply gates are a None-check until a file is frozen.
    """

    def __init__(self, server) -> None:
        self.server = server
        server.migrator = self
        server.ufs.on_write = self._on_write
        #: Active source-side sessions, by ino.
        self.sessions: Dict[int, _Session] = {}
        #: Files whose mutating replies must be abandoned (parked, or
        #: already cut over and awaiting purge): ino -> name.
        self.frozen: Dict[int, str] = {}
        actions = server._actions
        actions[PROC_MIGRATE_BEGIN] = self.handle_begin
        actions[PROC_MIGRATE_READ] = self.handle_read
        actions[PROC_MIGRATE_DELTA] = self.handle_delta
        actions[PROC_MIGRATE_PARK] = self.handle_park
        actions[PROC_MIGRATE_ABORT] = self.handle_abort
        actions[PROC_MIGRATE_PREPARE] = self.handle_prepare
        actions[PROC_MIGRATE_WRITE] = self.handle_write
        actions[PROC_MIGRATE_PURGE] = self.handle_purge

    # -- write observation and gating -------------------------------------------

    def _on_write(self, ino: int, offset: int, length: int) -> None:
        session = self.sessions.get(ino)
        if session is not None:
            session.dirty.append((offset, offset + length))
            if len(session.dirty) > 256:
                session.dirty = _merge_ranges(session.dirty)

    def blocks(self, proc: str, args) -> bool:
        """True when a request/reply targets a frozen file and must be
        abandoned (the client retransmits into the new authority)."""
        if not self.frozen:
            return False
        if proc in _FROZEN_BY_FHANDLE:
            fhandle = getattr(args, "fhandle", None)
            return fhandle is not None and fhandle[0] in self.frozen
        if proc in _FROZEN_BY_NAME:
            return getattr(args, "name", None) in self.frozen.values()
        if proc == PROC_RENAME:
            names = self.frozen.values()
            return args.src_name in names or args.dst_name in names
        return False

    def _freeze(self, ino: int, name: str) -> None:
        self.frozen[ino] = name

    def _unfreeze(self, ino: int) -> None:
        self.frozen.pop(ino, None)

    def mark_moved(self, ino: int) -> None:
        """Cutover bookkeeping: the session ends, the freeze stays until
        the source copy is purged (no mutation may sneak in between)."""
        self.sessions.pop(ino, None)

    def reset_volatile(self) -> None:
        """Crash semantics: sessions, fences, everything — RAM."""
        self.sessions.clear()
        self.frozen.clear()

    # -- source-side handlers ----------------------------------------------------

    def _session_for(self, fhandle) -> _Session:
        session = self.sessions.get(fhandle[0])
        if session is None:
            raise FsError(ENOSESSION, f"no migration session for ino {fhandle[0]}")
        return session

    def handle_begin(self, args: MigrateBeginArgs):
        """Install dirty tracking and report the file's size + generation.

        The session lands *before* the size is read, in the same sim
        instant — a write extending the file after this point dirties the
        extension, so the snapshot + deltas always cover everything.
        """
        server = self.server
        inode = server.ufs.get_inode(args.fhandle[0], args.fhandle[1])
        ino = inode.ino
        # A begin supersedes any stale session (an abort the source never
        # received): fresh tracking, fence down.
        self._unfreeze(ino)
        self.sessions[ino] = _Session(ino, args.name)
        yield from server.cpu.consume(0.0001)
        return (inode.size, inode.generation), RPC_HEADER_BYTES

    def handle_read(self, args: MigrateReadArgs):
        server = self.server
        inode = server.ufs.get_inode(args.fhandle[0], args.fhandle[1])
        data = yield from server.ufs.read(inode, args.offset, args.count)
        return data, RPC_HEADER_BYTES + len(data)

    def handle_delta(self, args: MigrateDeltaArgs):
        """Rotate one round of dirty ranges (idempotent per round)."""
        session = self._session_for(args.fhandle)
        ranges = session.rounds.get(args.round_no)
        if ranges is None:
            ranges = _merge_ranges(session.dirty)
            session.dirty = []
            session.rounds[args.round_no] = ranges
            # Older rounds were copied (or retransmitted) already.
            for stale in [r for r in session.rounds if r < args.round_no - 1]:
                del session.rounds[stale]
        yield from self.server.cpu.consume(0.0001)
        return list(ranges), RPC_HEADER_BYTES

    def handle_park(self, args: MigrateParkArgs):
        """Freeze the file and return the final delta, without yielding.

        Everything before this generator's first ``yield`` runs in one
        sim instant: the fence goes up, then the remaining dirty bytes
        are *peeked* from cache/durable state (no I/O events), then the
        file's recent dup-cache entries are collected.  Any write acked
        before this instant is therefore in the snapshot+deltas+final
        set; any write after it will never be acked by this shard.
        """
        session = self._session_for(args.fhandle)
        server = self.server
        inode = server.ufs.get_inode(args.fhandle[0], args.fhandle[1])
        session.parked = True
        self._freeze(inode.ino, session.name)
        final = _merge_ranges(
            session.dirty
            + [r for ranges in session.rounds.values() for r in ranges]
        )
        session.dirty = []
        session.rounds.clear()
        entries: List[Tuple[int, bytes]] = []
        payload = 0
        for start, end in final:
            end = min(end, inode.size)
            if end <= start:
                continue
            data = self._peek(inode, start, end)
            entries.append((start, data))
            payload += len(data)
        dups = self._recent_dups()
        yield from server.cpu.consume(0.0001 + 0.0000001 * payload)
        return (entries, dups, inode.size), RPC_HEADER_BYTES + payload

    def _peek(self, inode, start: int, end: int) -> bytes:
        """Read [start, end) from cache buffers / the durable image with
        no simulation events (park-instant snapshot)."""
        ufs = self.server.ufs
        block_size = ufs.block_size
        out = bytearray()
        pos = start
        while pos < end:
            fblock = pos // block_size
            within = pos - fblock * block_size
            take = min(end - pos, block_size - within)
            chunk = None
            addr = inode.block_addr(fblock)
            if addr is not None:
                buffer = ufs.cache.lookup(addr)
                if buffer is not None:
                    chunk = bytes(buffer.data[within : within + take])
            if chunk is None:
                durable = ufs.durable_read(inode.ino, pos, take)
                chunk = durable if durable is not None else b"\x00" * take
            if len(chunk) < take:
                chunk = chunk + b"\x00" * (take - len(chunk))
            out.extend(chunk)
            pos += take
        return bytes(out)

    def _recent_dups(self) -> tuple:
        """The dup-cache entries worth shipping: recently answered
        non-idempotent data ops whose retransmissions may chase the file
        to its new shard.  Entries for other files ride along inertly
        (xids are globally unique; their retransmissions route elsewhere)."""
        cache = self.server.svc.dup_cache
        now = self.server.env.now
        shipped = []
        for (client, xid), entry in cache._entries.items():
            if entry.state != DONE or entry.reply is None:
                continue
            if entry.proc not in (PROC_WRITE, PROC_COMMIT, PROC_SETATTR):
                continue
            if now - entry.when > cache.reply_window:
                continue
            shipped.append((client, xid, entry.proc, entry.reply))
        return tuple(shipped)

    def handle_abort(self, args: MigrateAbortArgs):
        """Idempotent unpark: drop the session and lower the fence."""
        ino = args.fhandle[0]
        self.sessions.pop(ino, None)
        self._unfreeze(ino)
        yield from self.server.cpu.consume(0.0001)
        return None, RPC_HEADER_BYTES

    # -- destination-side handlers ----------------------------------------------

    def handle_prepare(self, args: MigratePrepareArgs):
        """Adopt the file under its *original* ino + generation, so every
        client-held handle survives the cutover verbatim."""
        server = self.server
        ufs = server.ufs
        root = ufs.inodes[ROOT_INO]
        existing = root.entries.get(args.name)
        if existing is not None:
            if existing != args.ino:
                raise FsError("EEXIST", f"{args.name} exists as ino {existing}")
            inode = ufs.inodes[existing]
            inode.generation = args.generation
            yield from server.cpu.consume(0.0001)
            return None, RPC_HEADER_BYTES
        yield from ufs.adopt_inode(root, args.name, args.ino, args.generation)
        replicator = server.replicator
        if replicator is not None and replicator.active:
            op = ReplOp(
                proc=PROC_MIGRATE_PREPARE,
                ino=args.ino,
                generation=args.generation,
                dir_ino=ROOT_INO,
                name=args.name,
            )
            yield from replicator.commit_wait([op])
        return None, RPC_HEADER_BYTES

    def handle_write(self, args: MigrateWriteArgs):
        """Apply one migrated extent durably (and replicate it), then
        prime any shipped dup-cache entries."""
        server = self.server
        ufs = server.ufs
        if args.data:
            inode = ufs.get_inode(args.ino, args.generation)
            yield from ufs.write(inode, args.offset, args.data, IO_DELAYDATA)
            yield from ufs.sync_data(
                inode, args.offset, args.offset + len(args.data)
            )
            if inode.inode_dirty or inode.indirect_dirty:
                yield from ufs.fsync(inode, metadata_only=True)
            replicator = server.replicator
            if replicator is not None and replicator.active:
                op = ReplOp(
                    proc=PROC_WRITE,
                    ino=args.ino,
                    generation=args.generation,
                    offset=args.offset,
                    data=args.data,
                )
                yield from replicator.commit_wait([op])
        else:
            yield from server.cpu.consume(0.0001)
        for client, xid, proc, reply in args.dups:
            server.svc.dup_cache.record_done(
                RpcCall(xid=xid, proc=proc, args=None, size=1, client=client),
                reply,
            )
        return len(args.data), RPC_HEADER_BYTES

    def handle_purge(self, args: MigratePurgeArgs):
        """Remove this shard's copy (idempotent; refuses nothing)."""
        server = self.server
        ufs = server.ufs
        root = ufs.inodes[ROOT_INO]
        if root.entries.get(args.name) != args.ino:
            # Already purged, or the name was reborn as another file.
            self._unfreeze(args.ino)
            yield from server.cpu.consume(0.0001)
            return None, RPC_HEADER_BYTES
        yield from ufs.remove(root, args.name)
        server.vnodes.forget(args.ino)
        replicator = server.replicator
        if replicator is not None and replicator.active:
            op = ReplOp(proc=PROC_REMOVE, dir_ino=ROOT_INO, name=args.name)
            yield from replicator.commit_wait([op])
        self._unfreeze(args.ino)
        return None, RPC_HEADER_BYTES


@dataclass(frozen=True)
class MigrationPlan:
    """One scheduled migration: move ``name`` to shard ``dest`` at ``at``."""

    at: float
    name: str
    dest: str


class _Abort(Exception):
    """One migration attempt failed; the engine retries from BEGIN."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class MigrationEngine:
    """Drives migrations over the cluster's own transports.

    The engine is a privileged internal client: one endpoint per rack,
    calls routed through a :class:`~repro.cluster.router.ClusterRpc` so
    promotions redirect its traffic exactly as they redirect clients'.
    ``copy_pace`` (seconds per copied chunk) widens the copy window so
    fault campaigns can reliably land crashes mid-copy.
    """

    def __init__(
        self,
        cluster,
        oracle=None,
        chunk_bytes: int = 32768,
        park_threshold: int = 16384,
        max_rounds: int = 6,
        max_retries: int = 4,
        retry_backoff: float = 0.25,
        copy_pace: float = 0.0,
        failover_attempts: int = 4,
    ) -> None:
        from repro.cluster.router import ClusterRpc

        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.cluster = cluster
        self.env = cluster.env
        self.oracle = oracle
        if oracle is not None:
            oracle.add_check(self.check_contract)
        self.chunk_bytes = chunk_bytes
        self.park_threshold = park_threshold
        self.max_rounds = max_rounds
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.copy_pace = copy_pace
        host = cluster.segments[0].unique_host("migrator")
        rpcs = [
            RpcClient(self.env, segment.attach(host), cluster.servers[0].host)
            for segment in cluster.segments
        ]
        self.rpc = ClusterRpc(
            rpcs,
            cluster.router,
            cluster._rack_of_server,
            failover_attempts=failover_attempts,
        )
        #: Per-file migration state; the contract check walks this.
        self.active: Dict[str, dict] = {}
        #: Completed fault/outcome log, in event order.
        self.records: List[dict] = []
        self.started = 0
        self.completed = 0
        self.aborts = 0

    def start(self, plans) -> "MigrationEngine":
        for plan in plans:
            self.env.process(
                self._drive(plan), name=f"migrate:{plan.name}->{plan.dest}"
            )
        return self

    # -- the per-migration process ------------------------------------------------

    def _drive(self, plan: MigrationPlan):
        if plan.at > self.env.now:
            yield self.env.timeout(plan.at - self.env.now)
        self.started += 1
        record = {
            "kind": "migration",
            "name": plan.name,
            "dest": plan.dest,
            "start": round(self.env.now, 6),
            "attempts": 0,
            "aborts": [],
            "outcome": "pending",
        }
        self.records.append(record)
        outcome = "gave-up"
        for attempt in range(1, self.max_retries + 1):
            record["attempts"] = attempt
            try:
                outcome = yield from self._attempt(plan)
                break
            except _Abort as abort:
                self.aborts += 1
                record["aborts"].append(abort.reason)
                yield from self._cleanup_abort(plan)
                yield self.env.timeout(self.retry_backoff * attempt)
        if outcome == "gave-up":
            yield from self._cleanup_gave_up(plan)
            state = self.active.get(plan.name)
            if state is not None:
                state["phase"] = "failed"
        record["outcome"] = outcome
        record["end"] = round(self.env.now, 6)
        if outcome == "done":
            self.completed += 1

    def _call(self, proc, args, size, server, reply_size=RPC_HEADER_BYTES):
        try:
            reply = yield from self.rpc.call(
                proc,
                args,
                size,
                reply_size=reply_size,
                weight=WEIGHT_OF[proc],
                server=server,
            )
        except RpcTimeoutError as exc:
            raise _Abort(f"{proc} to {server} timed out") from exc
        if not reply.ok:
            raise _Abort(f"{proc} to {server} failed: {reply.status}")
        return reply

    def _attempt(self, plan: MigrationPlan):
        router = self.cluster.router
        name = plan.name
        reply = yield from self._call_lookup(name)
        if reply is None:
            return "gone"
        fhandle, _fattr = reply.result
        ino = fhandle[0]
        source = router.server_for_fhandle(fhandle)
        if source == plan.dest:
            return "noop"
        state = self.active.setdefault(name, {})
        state.update(
            {
                "name": name,
                "ino": ino,
                "fhandle": fhandle,
                "source": source,
                "dest": plan.dest,
                "authority": source,
                "phase": "copy",
                "purged": False,
            }
        )

        # Act 1: begin + snapshot copy.
        reply = yield from self._call(
            PROC_MIGRATE_BEGIN,
            MigrateBeginArgs(fhandle, name),
            RPC_HEADER_BYTES + len(name),
            source,
        )
        size0, generation = reply.result
        yield from self._call(
            PROC_MIGRATE_PREPARE,
            MigratePrepareArgs(name, ino, generation),
            RPC_HEADER_BYTES + len(name),
            plan.dest,
        )
        yield from self._copy_ranges(
            fhandle, ino, generation, source, plan.dest, [(0, size0)]
        )

        # Act 2: delta drain until a round converges.
        round_no = 0
        while True:
            reply = yield from self._call(
                PROC_MIGRATE_DELTA,
                MigrateDeltaArgs(fhandle, round_no),
                RPC_HEADER_BYTES,
                source,
            )
            round_no += 1
            ranges = reply.result
            yield from self._copy_ranges(
                fhandle, ino, generation, source, plan.dest, ranges
            )
            total = sum(end - start for start, end in ranges)
            if total <= self.park_threshold or round_no >= self.max_rounds:
                break

        # Act 3: park, ship the final delta durably, cut over.
        state["phase"] = "park"
        reply = yield from self._call(
            PROC_MIGRATE_PARK, MigrateParkArgs(fhandle), RPC_HEADER_BYTES, source
        )
        entries, dups, _final_size = reply.result
        for offset, data in entries:
            for at in range(0, len(data), self.chunk_bytes):
                piece = data[at : at + self.chunk_bytes]
                yield from self._call(
                    PROC_MIGRATE_WRITE,
                    MigrateWriteArgs(ino, generation, offset + at, piece),
                    RPC_HEADER_BYTES + len(piece),
                    plan.dest,
                )
        # The seal call: primes the destination's dup cache even when the
        # final delta was empty.
        yield from self._call(
            PROC_MIGRATE_WRITE,
            MigrateWriteArgs(ino, generation, 0, b"", dups=dups),
            RPC_HEADER_BYTES + 64 * len(dups),
            plan.dest,
        )

        # Cutover: one sim instant, no yields between the fence check and
        # the pin repoint — nothing can interleave.
        acting = self.cluster.server_by_host(router.resolve(source))
        migrator = getattr(acting, "migrator", None)
        session = migrator.sessions.get(ino) if migrator is not None else None
        if session is None or not session.parked:
            # The fence fell (crash wiped the volatile session, or a
            # promoted backup is acting and never had one): some write
            # may have been acked since park — the copy is not trusted.
            raise _Abort("park fence lost before cutover")
        if router.server_for_fhandle(fhandle) != source:
            raise _Abort("authority moved under the migration")
        router.migrate_pin(fhandle, name, plan.dest)
        if self.oracle is not None:
            self.oracle.transfer_ino(ino, source, plan.dest)
        migrator.mark_moved(ino)
        state["authority"] = plan.dest
        state["phase"] = "cleanup"

        # Roll-forward cleanup: only the source purge remains; acked data
        # already lives (durably) at the destination.
        purged = False
        for attempt in range(3):
            try:
                yield from self._call(
                    PROC_MIGRATE_PURGE,
                    MigratePurgeArgs(name, ino),
                    RPC_HEADER_BYTES + len(name),
                    source,
                )
                purged = True
                break
            except _Abort:
                yield self.env.timeout(self.retry_backoff * (attempt + 1))
        state["purged"] = purged
        state["phase"] = "done"
        return "done"

    def _call_lookup(self, name: str):
        """Resolve the file's handle (pinning it); None when it's gone."""
        args = LookupArgs(self.cluster.router.root_fhandle, name)
        try:
            reply = yield from self.rpc.call(
                PROC_LOOKUP,
                args,
                RPC_HEADER_BYTES + len(name),
                weight=WEIGHT_OF[PROC_LOOKUP],
            )
        except RpcTimeoutError as exc:
            raise _Abort("lookup timed out") from exc
        if not reply.ok:
            return None
        return reply

    def _copy_ranges(self, fhandle, ino, generation, source, dest, ranges):
        for start, end in ranges:
            offset = start
            while offset < end:
                take = min(self.chunk_bytes, end - offset)
                reply = yield from self._call(
                    PROC_MIGRATE_READ,
                    MigrateReadArgs(fhandle, offset, take),
                    RPC_HEADER_BYTES,
                    source,
                    reply_size=RPC_HEADER_BYTES + take,
                )
                data = reply.result
                if data:
                    yield from self._call(
                        PROC_MIGRATE_WRITE,
                        MigrateWriteArgs(ino, generation, offset, data),
                        RPC_HEADER_BYTES + len(data),
                        dest,
                    )
                offset += take
                if self.copy_pace:
                    yield self.env.timeout(self.copy_pace)

    def _cleanup_abort(self, plan: MigrationPlan):
        """Best-effort unpark; the next attempt re-prepares the dest."""
        state = self.active.get(plan.name)
        if not state or state.get("phase") in ("cleanup", "done"):
            return
        state["phase"] = "aborted"
        try:
            yield from self._call(
                PROC_MIGRATE_ABORT,
                MigrateAbortArgs(state["fhandle"]),
                RPC_HEADER_BYTES,
                state["source"],
            )
        except _Abort:
            pass  # unreachable source: its volatile fence dies with it

    def _cleanup_gave_up(self, plan: MigrationPlan):
        """Terminal abort: purge the destination's partial copy so the
        fleet never quiesces with two physical copies of one file."""
        state = self.active.get(plan.name)
        if not state or state.get("authority") != state.get("source"):
            return
        try:
            yield from self._call(
                PROC_MIGRATE_PURGE,
                MigratePurgeArgs(plan.name, state["ino"]),
                RPC_HEADER_BYTES + len(plan.name),
                state["dest"],
            )
        except _Abort:
            pass

    # -- the migration contract ----------------------------------------------------

    def check_contract(self, label: str = "") -> List[str]:
        """Every acked range satisfiable at exactly one authoritative
        location, at every instant the oracle looks.

        Registered with the :class:`~repro.cluster.oracle.ClusterOracle`,
        so every fault check and the final check walk it for free:

        * the router's pins agree with the engine's recorded authority
          (clients can only reach the shard that holds the promise);
        * the per-shard oracle bookkeeping for the ino lives at exactly
          the authority (no shard silently co-owns acked ranges);
        * once a migration is done *and purged*, no source-group member
          still holds the ino (no second physical copy at quiesce).
        """
        found: List[str] = []
        router = self.cluster.router
        now = self.env.now
        for name, state in sorted(self.active.items()):
            authority = state["authority"]
            pinned = router._fhandle_pins.get(state["fhandle"])
            if pinned is not None and pinned != authority:
                found.append(
                    f"[migration {name} t={now:.6f}] handle pinned to "
                    f"{pinned} but authority is {authority} ({label})"
                )
            name_pin = router.server_for_name(name)
            if name_pin != authority:
                found.append(
                    f"[migration {name} t={now:.6f}] name routes to "
                    f"{name_pin} but authority is {authority} ({label})"
                )
            if self.oracle is not None:
                holders = self.oracle.holders_of(state["ino"])
                strays = [h for h in holders if h != authority]
                if strays:
                    found.append(
                        f"[migration {name} t={now:.6f}] acked ranges "
                        f"tracked at {strays}, authority is {authority} "
                        f"({label})"
                    )
            if state.get("phase") == "done" and state.get("purged"):
                found.extend(self._check_single_copy(name, state, label))
        return found

    def _check_single_copy(self, name: str, state: dict, label: str) -> List[str]:
        found: List[str] = []
        source = state["source"]
        ino = state["ino"]
        for group in self.cluster.groups:
            if group.logical_host != source:
                continue
            for member in group.surviving():
                inode = member.ufs.inodes.get(ino)
                if inode is not None and inode.ftype == FileType.FILE:
                    found.append(
                        f"[migration {name}] purged source copy still "
                        f"present on {member.host} ({label})"
                    )
        return found

    def summary(self) -> dict:
        """JSON-ready counters + per-migration outcomes."""
        return {
            "started": self.started,
            "completed": self.completed,
            "aborts": self.aborts,
            "migrations": [dict(record) for record in self.records],
        }
