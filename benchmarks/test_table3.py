"""Table 3 — NFS 10MB file copy: FDDI, one RZ26 (DEC 3500 -> DEC 3800).

Paper shape: the standard server stays disk-bound (~208 KB/s flat, 6% CPU);
gathering reaches ~1 MB/s at 15 biods — the single-client headline result.
"""

from repro.experiments import run_table


def test_table3(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(3,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    # Standard flat and disk-bound.
    assert max(std_speed) / min(std_speed) < 1.25
    assert 150 <= std_speed[0] <= 300
    # Gathering: ~4x at 7 biods (paper 846 vs 207), near 1 MB/s at 15.
    assert gat_speed[2] > 3.0 * std_speed[2]
    assert gat_speed[-1] > 800
    # 0-biod worst case still present.
    assert gat_speed[0] < std_speed[0]
    # Disk transaction collapse.
    assert result.series("gather", "disk_tps")[-1] < 0.6 * result.series("std", "disk_tps")[-1]
