"""Extension (§6.1): scaling with many active client writers.

"This architecture allows optimal write gathering to take place with as few
as one nfsd available on the server; this is an architecture that should
scale well for large servers with many active client writers."

Sweeps concurrent writer counts against a 3-way stripe under both servers,
plus the one-nfsd configuration the paper calls out.
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.workload import write_file

KB = 1024
FILE_KB = 512


def aggregate(write_path, writers, nfsds=16):
    config = TestbedConfig(
        netspec=FDDI, write_path=write_path, nbiods=4, stripes=3, nfsds=nfsds
    )
    testbed = Testbed(config)
    clients = [testbed.add_client() for _ in range(writers)]
    env = testbed.env
    procs = [
        env.process(write_file(env, client, f"w{i}", FILE_KB * KB))
        for i, client in enumerate(clients)
    ]

    def waiter(env):
        for proc in procs:
            yield proc

    env.run(until=env.process(waiter(env)))
    return writers * FILE_KB / env.now  # aggregate KB/s


def run_sweep():
    table = {}
    for writers in (1, 2, 4, 8):
        table[writers] = {
            "standard": aggregate("standard", writers),
            "gather": aggregate("gather", writers),
        }
    table["gather-1nfsd"] = aggregate("gather", 4, nfsds=1)
    table["standard-1nfsd"] = aggregate("standard", 4, nfsds=1)
    return table


def test_many_writers(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\nAggregate write bandwidth, N concurrent writers, 3-way stripe:")
    print(f"  {'writers':>8} {'standard':>10} {'gathering':>10}   (KB/s)")
    for writers in (1, 2, 4, 8):
        row = table[writers]
        print(f"  {writers:>8} {row['standard']:>10.0f} {row['gather']:>10.0f}")
    print(
        f"  {'4 (1 nfsd)':>8} {table['standard-1nfsd']:>10.0f} "
        f"{table['gather-1nfsd']:>10.0f}"
    )

    # Gathering's aggregate grows with writers; standard saturates early.
    assert table[4]["gather"] > 2 * table[1]["gather"]
    assert table[8]["gather"] > table[8]["standard"] * 1.5
    # The one-nfsd architecture claim: gathering keeps most of its multi-
    # writer bandwidth even with a single nfsd (REPLY_PENDING frees it),
    # while remaining well ahead of the one-nfsd standard server.
    assert table["gather-1nfsd"] > 1.5 * table["standard-1nfsd"]
