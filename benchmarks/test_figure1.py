"""Figure 1 — the side-by-side packet/disk timeline (4 biods, >100K in).

Regenerates the paper's trace: the standard server does a data write plus a
metadata write per 8K request; the gathering server digests a train of
writes, issues a few large transactions, and releases a burst of replies.
"""

from repro.experiments import figure1


def run_figure1():
    return figure1(file_kb=256)


def test_figure1(benchmark):
    sides = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    for name in ("standard", "gathering"):
        side = sides[name]
        print(f"\n=== {name} server (window from {side['window_start_ms']:.1f} ms) ===")
        print(side["rendered"])
        print(
            f"window summary: {side['writes']} writes, "
            f"{side['disk_transactions']} disk transactions, {side['replies']} replies"
        )

    standard = sides["standard"]
    gathering = sides["gathering"]
    # Standard: >= 2 disk transactions per write (data + inode/indirect).
    per_write_std = standard["disk_transactions"] / max(1, standard["writes"])
    assert per_write_std >= 1.8
    # Gathering: strictly fewer disk transactions per write, and the window
    # processes more writes in the same 150 ms (the throughput win).
    per_write_gat = gathering["disk_transactions"] / max(1, gathering["writes"])
    assert per_write_gat < 0.6 * per_write_std
    assert gathering["writes"] > standard["writes"]
    # Replies batch up: at least as many replies as disk transactions.
    assert gathering["replies"] >= gathering["disk_transactions"]
