"""Table 5 — NFS 10MB file copy: FDDI, 3 striped RZ26 drives.

Paper shape: striping barely helps the standard server (~300 KB/s; the
vnode serializes its synchronous writes) but multiplies gathering's headroom
— 1618 KB/s at 23 biods, +417% over standard, with disk t/s staying modest
because the transfers are large.
"""

from repro.experiments import run_table


def test_table5(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(5,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    # Standard: small benefit from stripes at best.
    assert std_speed[-1] < 450
    # Gathering scales with biods: monotone-ish growth to > 1.2 MB/s.
    assert gat_speed[-1] > 1200
    assert gat_speed[-1] > 3.5 * std_speed[-1]
    assert gat_speed[0] < std_speed[0]  # 0-biod worst case
    # Growth across the sweep (paper: 187 -> 1618).
    assert gat_speed[-1] > 2 * gat_speed[1]
