"""Table 1 — NFS 10MB file copy: Ethernet, one RZ26, DEC 3400s, 8 nfsds.

Paper shape: the standard server is spindle-bound at ~200 KB/s regardless
of biods; gathering loses ~15% at 0 biods, then multiplies bandwidth
(+145% at 7 biods, +228% at 15) while disk transactions collapse.
"""

from repro.experiments import run_table


def test_table1(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(1,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    # Standard server flat, ~200 KB/s band.
    assert max(std_speed) / min(std_speed) < 1.35
    assert 140 <= std_speed[-1] <= 280
    # 0 biods: gathering is the worst case (~15% loss).
    assert 0.70 <= gat_speed[0] / std_speed[0] <= 0.97
    # 7 biods: paper +145%; accept anything past +80%.
    assert gat_speed[2] > 1.8 * std_speed[2]
    # 15 biods: paper +228%; accept past +120%.
    assert gat_speed[-1] > 2.2 * std_speed[-1]
    # Disk transactions collapse with gathering at >= 7 biods.
    std_tps = result.series("std", "disk_tps")
    gat_tps = result.series("gather", "disk_tps")
    assert gat_tps[2] < 0.55 * std_tps[2]
    # Gathering spends more CPU in exchange for the bandwidth.
    assert result.series("gather", "cpu")[-1] > result.series("std", "cpu")[-1]
