"""Ablation (§6.6): how long should the server procrastinate?

"I wish I could say I know how to calculate the 'right' number, but I
don't.  Clearly there is room for more work here."  — this sweep is that
work: procrastination intervals from 0 to 16 ms on Ethernet (the paper's
empirically derived value is 8 ms) and 0 to 12 ms on FDDI (paper: 5 ms),
measuring client bandwidth and mean gathered batch size.
"""

import pytest

from repro.core import GatherPolicy
from repro.experiments import TestbedConfig, run_filecopy
from repro.net import ETHERNET, FDDI

ETHERNET_INTERVALS = (0.0, 0.002, 0.004, 0.008, 0.012, 0.016)
FDDI_INTERVALS = (0.0, 0.00125, 0.0025, 0.005, 0.0075, 0.012)


def sweep(netspec, intervals):
    rows = []
    for interval in intervals:
        config = TestbedConfig(
            netspec=netspec,
            write_path="gather",
            nbiods=7,
            gather_policy=GatherPolicy(interval=interval),
        )
        metrics = run_filecopy(config, file_mb=6)
        rows.append((interval, metrics.client_kb_per_sec, metrics.mean_batch_size))
    return rows


def run_ablation():
    return {"ethernet": sweep(ETHERNET, ETHERNET_INTERVALS), "fddi": sweep(FDDI, FDDI_INTERVALS)}


def test_procrastination_interval(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    for network, rows in results.items():
        paper_value = 0.008 if network == "ethernet" else 0.005
        print(f"\n{network} (paper's empirical value: {paper_value * 1000:.0f} ms):")
        print(f"  {'interval ms':>11} {'KB/s':>8} {'batch':>7}")
        for interval, speed, batch in rows:
            marker = "  <- paper" if interval == paper_value else ""
            print(f"  {interval * 1000:>11.2f} {speed:>8.0f} {batch:>7.1f}{marker}")

    for network, rows in results.items():
        speeds = [speed for _interval, speed, _batch in rows]
        batches = [batch for _interval, _speed, batch in rows]
        # Batches grow monotonically-ish with patience...
        assert batches[-1] > batches[0]
        # ...and zero procrastination costs real bandwidth vs the paper's
        # empirically derived interval.
        paper_index = 3  # 8 ms / 5 ms position in the sweeps
        assert speeds[paper_index] > 1.1 * speeds[0]
        # The paper's value is within 15% of the sweep's best.
        assert speeds[paper_index] > 0.85 * max(speeds)
