"""Extension (§8 future work): NFSv3 reliable asynchronous writes.

Not a paper table — the paper only speculates about V3.  This benchmark
quantifies the speculation: a V3 client using unstable WRITE + COMMIT
versus a V2 client against the standard and gathering servers.
"""

from repro.experiments import Testbed, TestbedConfig
from repro.net import FDDI
from repro.nfs import NfsClient
from repro.rpc import RpcClient
from repro.workload import write_file

MB = 1 << 20


def run_v3_comparison():
    results = {}
    for label, write_path, version in (
        ("v2 standard", "standard", 2),
        ("v2 gathering", "gather", 2),
        ("v3 async", "standard", 3),
        ("v3 async + gathering server", "gather", 3),
    ):
        config = TestbedConfig(netspec=FDDI, write_path=write_path, nbiods=7)
        testbed = Testbed(config)
        endpoint = testbed.segment.attach("client")
        rpc = RpcClient(testbed.env, endpoint, testbed.server.host)
        client = NfsClient(testbed.env, rpc, nbiods=7, nfs_version=version)
        env = testbed.env
        proc = env.process(write_file(env, client, "f", 10 * MB))
        env.run(until=proc)
        results[label] = {
            "kb_per_sec": 10 * MB / proc.value / 1024,
            "cpu_pct": 100 * testbed.server.cpu.utilization(),
            "disk_tps": sum(d.stats.transactions.value for d in testbed.disks)
            / proc.value,
        }
    return results


def test_v3_extension(benchmark):
    results = benchmark.pedantic(run_v3_comparison, rounds=1, iterations=1)
    print("\nNFS v2 vs v3, 10MB copy, FDDI, 7 biods:")
    for label, row in results.items():
        print(
            f"  {label:<30} {row['kb_per_sec']:7.0f} KB/s  "
            f"cpu {row['cpu_pct']:4.1f}%  disk {row['disk_tps']:5.1f} t/s"
        )

    # V3 async beats the stable-write v2 standard server outright...
    assert results["v3 async"]["kb_per_sec"] > 2 * results["v2 standard"]["kb_per_sec"]
    # ...and v2-with-gathering recovers a large share of the v3 advantage
    # without any client or protocol change (the paper's §8 point: V2
    # semantics stay relevant, and gathering keeps them competitive).
    assert (
        results["v2 gathering"]["kb_per_sec"]
        > 0.3 * results["v3 async"]["kb_per_sec"]
    )
    # A v3 client is indifferent to the server's gathering (nothing stable
    # to gather per write).
    ratio = (
        results["v3 async + gathering server"]["kb_per_sec"]
        / results["v3 async"]["kb_per_sec"]
    )
    assert 0.8 < ratio < 1.25
