"""Figure 3 — the same LADDIS configuration with Prestoserve.

Paper shape: "more modest, but still positive, gains" — the NVRAM board
already removed most of the write latency, so the two curves nearly
coincide, with gathering no worse and slightly ahead on efficiency.
"""

from repro.experiments import run_curve

LOADS = (200.0, 400.0, 600.0, 700.0, 800.0)


def run_figure3():
    standard = run_curve("standard", presto=True, loads=LOADS, duration=4.0, warmup=1.0)
    gathering = run_curve("gather", presto=True, loads=LOADS, duration=4.0, warmup=1.0)
    return standard, gathering


def test_figure3(benchmark):
    standard, gathering = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print("\nFigure 3: SPEC SFS 1.0 with Prestoserve")
    print(f"{'offered':>8} {'std ops/s':>10} {'std ms':>8} {'gat ops/s':>10} {'gat ms':>8}")
    for s_point, g_point in zip(standard.points, gathering.points):
        print(
            f"{s_point.offered:8.0f} {s_point.achieved:10.0f} {s_point.latency_ms:8.1f}"
            f" {g_point.achieved:10.0f} {g_point.latency_ms:8.1f}"
        )
    print(
        f"capacity: std {standard.capacity():.0f}, gather {gathering.capacity():.0f} "
        f"(paper: modest positive gain)"
    )

    # Modest: the curves nearly coincide; gathering is not worse than a few
    # percent anywhere that matters, and capacity is at least on par.
    assert gathering.capacity() >= 0.95 * standard.capacity()
    for s_point, g_point in zip(standard.points[:3], gathering.points[:3]):
        assert g_point.latency_ms < 1.5 * s_point.latency_ms
