"""Ablations for the remaining design choices DESIGN.md calls out:

* the mbuf hunter (§6.5) — disabled, Presto-mode gathering loses its only
  way of seeing follow-on writes;
* FIFO vs LIFO reply order (§6.7) — LIFO was tried and abandoned;
* the SIVA93 first-write-as-latency-device variant (§6.6) — works on plain
  disks, cannot gather under NVRAM;
* the learned-clients database (§8) — erases the dumb-PC penalty.
"""

from repro.core import GatherPolicy
from repro.experiments import TestbedConfig, run_filecopy
from repro.net import ETHERNET, FDDI

MB = 1 << 20


def run_policies():
    results = {}

    def cell(label, **kwargs):
        file_mb = kwargs.pop("file_mb", 6)
        results[label] = run_filecopy(TestbedConfig(**kwargs), file_mb=file_mb)

    # §6.5 + §6.1: with a single nfsd, nobody can be "blocked on the same
    # vnode" — the socket-buffer scan is the only visible evidence of
    # follow-on writes, and it alone enables one-nfsd optimal gathering.
    cell(
        "1-nfsd gather + mbuf hunter",
        netspec=FDDI,
        write_path="gather",
        nbiods=7,
        presto_bytes=MB,
        nfsds=1,
    )
    cell(
        "1-nfsd gather - mbuf hunter",
        netspec=FDDI,
        write_path="gather",
        nbiods=7,
        presto_bytes=MB,
        nfsds=1,
        gather_policy=GatherPolicy(use_mbuf_hunter=False),
    )
    cell(
        "early-wakeup procrastination",
        netspec=FDDI,
        write_path="gather",
        nbiods=7,
        gather_policy=GatherPolicy(early_wakeup=True),
    )
    cell("fifo replies", netspec=ETHERNET, write_path="gather", nbiods=4)
    cell(
        "lifo replies",
        netspec=ETHERNET,
        write_path="gather",
        nbiods=4,
        gather_policy=GatherPolicy(reply_order="lifo"),
    )
    cell("siva on disks", netspec=FDDI, write_path="siva", nbiods=7)
    cell("gather on disks", netspec=FDDI, write_path="gather", nbiods=7)
    cell("standard on disks", netspec=FDDI, write_path="standard", nbiods=7)
    cell("siva on presto", netspec=FDDI, write_path="siva", nbiods=7, presto_bytes=MB)
    cell("standard on presto", netspec=FDDI, write_path="standard", nbiods=7, presto_bytes=MB)
    cell("dumb pc standard", netspec=ETHERNET, write_path="standard", nbiods=0, file_mb=2)
    cell("dumb pc gather", netspec=ETHERNET, write_path="gather", nbiods=0, file_mb=2)
    cell(
        "dumb pc gather learned",
        netspec=ETHERNET,
        write_path="gather",
        nbiods=0,
        file_mb=2,
        gather_policy=GatherPolicy(learned_clients=True),
    )
    return results


def test_policy_ablations(benchmark):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    print("\nPolicy ablations (KB/s, mean batch):")
    for label, metrics in results.items():
        batch = f"{metrics.mean_batch_size:5.1f}" if metrics.mean_batch_size else "    -"
        print(f"  {label:<30} {metrics.client_kb_per_sec:7.0f} KB/s  batch {batch}")

    speed = {label: m.client_kb_per_sec for label, m in results.items()}
    batch = {label: m.mean_batch_size for label, m in results.items()}

    # §6.5/§6.1: with one nfsd the mbuf hunter is the only gathering
    # evidence; removing it collapses batches toward one.
    assert batch["1-nfsd gather + mbuf hunter"] > 1.5 * batch["1-nfsd gather - mbuf hunter"]
    assert speed["1-nfsd gather + mbuf hunter"] > speed["1-nfsd gather - mbuf hunter"]
    # §6.7: FIFO is at least as good as LIFO for the sequential writer.
    assert speed["fifo replies"] >= 0.95 * speed["lifo replies"]
    # §6.6: SIVA93 helps on plain disks but the procrastinating gatherer
    # matches or beats it; under NVRAM SIVA degenerates to standard.
    assert speed["siva on disks"] > 1.5 * speed["standard on disks"]
    assert speed["gather on disks"] >= 0.9 * speed["siva on disks"]
    assert abs(speed["siva on presto"] - speed["standard on presto"]) < 0.2 * speed[
        "standard on presto"
    ]
    # Extension: early wakeup at least matches plain procrastination.
    assert speed["early-wakeup procrastination"] >= 0.95 * speed["gather on disks"]
    # §6.10/§8: learned clients rescue the dumb PC.
    assert speed["dumb pc gather"] < speed["dumb pc standard"]
    assert speed["dumb pc gather learned"] > 0.95 * speed["dumb pc standard"]
