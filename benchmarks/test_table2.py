"""Table 2 — NFS 10MB file copy: Ethernet with Prestoserve NVRAM.

Paper shape: NVRAM transforms the standard server (~1100 KB/s, wire-bound);
gathering now *costs* client throughput (991 vs 1112 at 15 biods) but cuts
server CPU (34% vs 43%) — the §6.3 duality in action.
"""

from repro.experiments import run_table


def test_table2(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(2,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    std_cpu = result.series("std", "cpu")
    gat_cpu = result.series("gather", "cpu")
    # Presto lifts the standard server far beyond plain-disk ~200 KB/s.
    assert std_speed[-1] > 800
    # Gathering loses client throughput under Presto at every biod count.
    for index in range(len(std_speed)):
        assert gat_speed[index] < std_speed[index] * 1.02
    # ...but serves each byte with less CPU.
    cpu_per_kb_std = std_cpu[-1] / std_speed[-1]
    cpu_per_kb_gat = gat_cpu[-1] / gat_speed[-1]
    assert cpu_per_kb_gat < cpu_per_kb_std
    # Presto-era disk transactions are large (its own clustering).
    std_kb_per_tx = result.series("std", "disk_kbs")[-1] / result.series("std", "disk_tps")[-1]
    assert std_kb_per_tx > 16
