"""Table 6 — NFS 10MB file copy: FDDI, Prestoserve, 3 striped drives.

Paper shape: the standard server reaches ~3.4 MB/s at ~70% CPU; gathering
cuts CPU hard at low biod counts (6% vs 40% at 0 biods, 29% vs 66% at 3)
at the cost of client throughput there.

Known deviation (recorded in EXPERIMENTS.md): at >= 7 biods our gathering
server matches or exceeds the standard server's throughput, where the
paper measured a ~20% deficit; the CPU-efficiency direction still holds at
the low-biod end.
"""

from repro.experiments import run_table


def test_table6(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(6,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    std_cpu = result.series("std", "cpu")
    gat_cpu = result.series("gather", "cpu")
    # Standard server: multi-MB/s, CPU-heavy (paper 66-71% past 3 biods).
    assert std_speed[-1] > 2200
    assert std_cpu[-1] > 45
    # Gathering's 0/3-biod cells: lower throughput AND lower CPU.
    assert gat_speed[0] < 0.65 * std_speed[0]
    assert gat_cpu[0] < std_cpu[0]
    assert gat_cpu[1] < std_cpu[1]
    # CPU per byte favors gathering across the sweep.
    assert gat_cpu[-1] / gat_speed[-1] < std_cpu[-1] / std_speed[-1]
