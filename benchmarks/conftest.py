"""Shared helpers for the table/figure benchmarks.

Each benchmark regenerates one of the paper's tables or figures at full
scale (10 MB copies / multi-point LADDIS sweeps), prints the measured rows
next to the published ones, and asserts the paper's *shape*: who wins, by
roughly what factor, and where the crossovers fall.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER, TABLES
from repro.metrics import format_comparison


def print_table_comparison(result) -> None:
    """Emit the measured table in the paper's layout plus per-row ratios."""
    spec = result.spec
    print()
    print(result.render())
    print()
    paper = PAPER[spec.number]
    for variant, title in (("std", "Without"), ("gather", "With")):
        for row, unit in (
            ("speed", "KB/s"),
            ("cpu", "%"),
            ("disk_kbs", "KB/s"),
            ("disk_tps", "t/s"),
        ):
            print(
                format_comparison(
                    f"{title} gathering — {row} (measured vs paper)",
                    spec.biods,
                    result.series(variant, row),
                    paper[variant][row],
                    unit=unit,
                )
            )
    print()


@pytest.fixture
def table_reporter():
    return print_table_comparison
