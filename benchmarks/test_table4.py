"""Table 4 — NFS 10MB file copy: FDDI with Prestoserve.

Paper shape: the RZ26 is driven at its raw 64K-transfer bandwidth limit
(~1.9 MB/s) by both servers once biods >= 3; the gathering server pays a
big penalty only in the 0-biod case (927 vs 1883); CPU is lower with
gathering.
"""

from repro.experiments import run_table


def test_table4(benchmark, table_reporter):
    result = benchmark.pedantic(run_table, args=(4,), kwargs={"file_mb": 10}, rounds=1, iterations=1)
    table_reporter(result)

    std_speed = result.series("std", "speed")
    gat_speed = result.series("gather", "speed")
    # Both servers ride the raw-device drain limit at >= 3 biods: within
    # ~20% of each other, in the 1.5-2.6 MB/s band.
    for index in range(1, len(std_speed)):
        assert 1500 <= std_speed[index] <= 2700
        assert abs(gat_speed[index] - std_speed[index]) / std_speed[index] < 0.25
    # The 0-biod gathering case is the outlier (paper: 927 vs 1883).
    assert gat_speed[0] < 0.65 * std_speed[0]
    # Gathering's CPU per byte is lower.
    cpu_per_kb_std = result.series("std", "cpu")[-1] / std_speed[-1]
    cpu_per_kb_gat = result.series("gather", "cpu")[-1] / gat_speed[-1]
    assert cpu_per_kb_gat < cpu_per_kb_std
