"""Figure 2 — DEC 3800 SPEC SFS 1.0 (LADDIS) baseline curves.

Paper shape: write gathering buys ~13% more server capacity and ~11% lower
average response time on the mixed SFS workload (writes are only 15% of
operations but dominate server cost).
"""

from repro.experiments import run_curve

LOADS = (150.0, 300.0, 450.0, 550.0, 650.0, 750.0)


def run_figure2():
    standard = run_curve("standard", loads=LOADS, duration=4.0, warmup=1.0)
    gathering = run_curve("gather", loads=LOADS, duration=4.0, warmup=1.0)
    return standard, gathering


def test_figure2(benchmark):
    standard, gathering = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print("\nFigure 2: SPEC SFS 1.0 baseline (no Presto)")
    print(f"{'offered':>8} {'std ops/s':>10} {'std ms':>8} {'gat ops/s':>10} {'gat ms':>8}")
    for s_point, g_point in zip(standard.points, gathering.points):
        print(
            f"{s_point.offered:8.0f} {s_point.achieved:10.0f} {s_point.latency_ms:8.1f}"
            f" {g_point.achieved:10.0f} {g_point.latency_ms:8.1f}"
        )
    print(
        f"capacity (avg latency <= 50 ms): std {standard.capacity():.0f}, "
        f"gather {gathering.capacity():.0f} "
        f"({100 * (gathering.capacity() / standard.capacity() - 1):+.0f}%; paper +13%)"
    )

    # Capacity: gathering at least matches the standard server (paper +13%).
    assert gathering.capacity() >= 0.97 * standard.capacity()
    # Latency: lower with gathering at moderate load (paper -11%).
    mid = len(LOADS) // 2
    assert gathering.points[1].latency_ms < standard.points[1].latency_ms
    assert gathering.points[mid].latency_ms < 1.05 * standard.points[mid].latency_ms
