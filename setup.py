"""Legacy setup shim so editable installs work without network access.

The offline environment has no ``wheel`` package, which PEP-517 editable
builds require; ``pip install -e . --no-build-isolation`` falls back to this
``setup.py develop`` path instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
